#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "gaussian/gaussian_model.hpp"
#include "gaussian/monitor_experiment.hpp"
#include "gaussian/selection.hpp"
#include "trace/synthetic.hpp"

namespace resmon::gaussian {
namespace {

/// Training matrix for 3 correlated nodes: node1 = node0 + tiny noise,
/// node2 independent.
Matrix correlated_train(std::size_t steps, std::uint64_t seed) {
  Rng rng(seed);
  Matrix train(steps, 3);
  for (std::size_t t = 0; t < steps; ++t) {
    const double base = rng.normal(0.5, 0.1);
    train(t, 0) = base;
    train(t, 1) = base + rng.normal(0.0, 0.01);
    train(t, 2) = rng.normal(0.5, 0.1);
  }
  return train;
}

TEST(GaussianModel, FitEstimatesMeanAndVariance) {
  Rng rng(1);
  Matrix train(4000, 2);
  for (std::size_t t = 0; t < 4000; ++t) {
    train(t, 0) = rng.normal(0.3, 0.1);
    train(t, 1) = rng.normal(0.7, 0.2);
  }
  const GaussianModel m = GaussianModel::fit(train);
  EXPECT_NEAR(m.mean()[0], 0.3, 0.01);
  EXPECT_NEAR(m.mean()[1], 0.7, 0.02);
  EXPECT_NEAR(m.covariance()(0, 0), 0.01, 0.002);
  EXPECT_NEAR(m.covariance()(1, 1), 0.04, 0.005);
  EXPECT_NEAR(m.covariance()(0, 1), 0.0, 0.002);
}

TEST(GaussianModel, FitRequiresTwoSamples) {
  EXPECT_THROW(GaussianModel::fit(Matrix(1, 3)), InvalidArgument);
}

TEST(GaussianModel, InferenceUsesCorrelation) {
  const GaussianModel m = GaussianModel::fit(correlated_train(2000, 2));
  // Observe node 0 high; node 1 (strongly correlated) should be inferred
  // close to it; node 2 (independent) should stay near its mean.
  const std::vector<double> inferred = m.infer({0}, std::vector<double>{0.9});
  EXPECT_NEAR(inferred[1], 0.9, 0.05);
  EXPECT_NEAR(inferred[2], 0.5, 0.05);
  EXPECT_DOUBLE_EQ(inferred[0], 0.9);  // monitors keep observed values
}

TEST(GaussianModel, InferenceValidatesInput) {
  const GaussianModel m = GaussianModel::fit(correlated_train(100, 3));
  EXPECT_THROW(m.infer({}, std::vector<double>{}), InvalidArgument);
  EXPECT_THROW(m.infer({0, 1}, std::vector<double>{0.1}), InvalidArgument);
  EXPECT_THROW(m.infer({9}, std::vector<double>{0.1}), InvalidArgument);
}

TEST(GaussianModel, ConditionalVarianceDropsWithMoreMonitors) {
  const GaussianModel m = GaussianModel::fit(correlated_train(1000, 4));
  const double v1 = m.conditional_variance({0});
  const double v2 = m.conditional_variance({0, 2});
  EXPECT_GE(v1, v2 - 1e-12);
  EXPECT_GE(v2, 0.0);
}

TEST(GaussianModel, MonitoringCorrelatedNodeExplainsItsTwin) {
  const GaussianModel m = GaussianModel::fit(correlated_train(2000, 5));
  // Monitoring node 0 should leave little residual variance at node 1 but
  // nearly full variance at node 2.
  const double v = m.conditional_variance({0});
  const double var2 = m.covariance()(2, 2);
  EXPECT_LT(v, var2 * 1.2);
  EXPECT_GT(v, var2 * 0.8);  // node 2 unexplained, node 1 ~ free
}

// ---- online estimation -----------------------------------------------------

TEST(OnlineGaussian, MatchesBatchFitExactly) {
  const Matrix train = correlated_train(300, 20);
  OnlineGaussianModel online(3);
  std::vector<double> row(3);
  for (std::size_t t = 0; t < train.rows(); ++t) {
    for (std::size_t i = 0; i < 3; ++i) row[i] = train(t, i);
    online.observe(row);
  }
  const GaussianModel batch = GaussianModel::fit(train, 1e-6);
  const GaussianModel streamed = online.finalize(1e-6);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(streamed.mean()[i], batch.mean()[i], 1e-10);
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_NEAR(streamed.covariance()(i, j), batch.covariance()(i, j),
                  1e-10);
    }
  }
}

TEST(OnlineGaussian, CovarianceStaysSymmetric) {
  Rng rng(21);
  OnlineGaussianModel online(4);
  std::vector<double> row(4);
  for (int t = 0; t < 50; ++t) {
    for (double& v : row) v = rng.uniform();
    online.observe(row);
  }
  const GaussianModel m = online.finalize();
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      EXPECT_DOUBLE_EQ(m.covariance()(i, j), m.covariance()(j, i));
    }
  }
}

TEST(OnlineGaussian, Validates) {
  EXPECT_THROW(OnlineGaussianModel(0), InvalidArgument);
  OnlineGaussianModel online(2);
  EXPECT_THROW(online.observe(std::vector<double>{0.1}), InvalidArgument);
  EXPECT_THROW(online.finalize(), InvalidArgument);  // no samples yet
  online.observe(std::vector<double>{0.1, 0.2});
  EXPECT_THROW(online.finalize(), InvalidArgument);  // one sample
  online.observe(std::vector<double>{0.3, 0.4});
  EXPECT_NO_THROW(online.finalize());
  EXPECT_EQ(online.samples(), 2u);
}

// ---- selection -----------------------------------------------------------

TEST(Selection, TopWPicksHighWeightNodes) {
  const GaussianModel m = GaussianModel::fit(correlated_train(2000, 6));
  // Nodes 0/1 carry mutual covariance mass; a single Top-W monitor must be
  // one of them, not the independent node 2.
  const std::vector<std::size_t> monitors = select_top_w(m, 1);
  EXPECT_NE(monitors[0], 2u);
}

TEST(Selection, ResultsAreSortedUniqueAndInRange) {
  const GaussianModel m = GaussianModel::fit(correlated_train(500, 7));
  Rng rng(7);
  for (const auto& monitors :
       {select_top_w(m, 2), select_top_w_update(m, 2),
        select_batch(m, 2, rng)}) {
    EXPECT_EQ(monitors.size(), 2u);
    EXPECT_TRUE(std::is_sorted(monitors.begin(), monitors.end()));
    std::set<std::size_t> uniq(monitors.begin(), monitors.end());
    EXPECT_EQ(uniq.size(), 2u);
    for (const std::size_t mtr : monitors) EXPECT_LT(mtr, 3u);
  }
}

TEST(Selection, TopWUpdateAvoidsRedundantMonitors) {
  // With K=2, greedy variance reduction should pick one of the twins and
  // the independent node — not both twins.
  const GaussianModel m = GaussianModel::fit(correlated_train(2000, 8));
  const std::vector<std::size_t> monitors = select_top_w_update(m, 2);
  EXPECT_TRUE(std::find(monitors.begin(), monitors.end(), 2u) !=
              monitors.end());
}

TEST(Selection, BatchIsAtLeastAsGoodAsTopW) {
  trace::SyntheticProfile p = trace::google_profile();
  p.num_nodes = 20;
  p.num_steps = 300;
  const trace::InMemoryTrace t = trace::generate(p, 9);
  Matrix train(300, 20);
  for (std::size_t s = 0; s < 300; ++s) {
    for (std::size_t i = 0; i < 20; ++i) train(s, i) = t.value(i, s, 0);
  }
  const GaussianModel m = GaussianModel::fit(train);
  Rng rng(9);
  const double v_topw = m.conditional_variance(select_top_w(m, 4));
  const double v_batch =
      m.conditional_variance(select_batch(m, 4, rng, 3, 16));
  EXPECT_LE(v_batch, v_topw + 1e-9);
}

TEST(Selection, ValidatesK) {
  const GaussianModel m = GaussianModel::fit(correlated_train(100, 10));
  Rng rng(10);
  EXPECT_THROW(select_top_w(m, 0), InvalidArgument);
  EXPECT_THROW(select_top_w(m, 3), InvalidArgument);  // K must be < N
  EXPECT_THROW(select_top_w_update(m, 0), InvalidArgument);
  EXPECT_THROW(select_batch(m, 5, rng), InvalidArgument);
}

// ---- monitor experiment ---------------------------------------------------

trace::InMemoryTrace experiment_trace() {
  trace::SyntheticProfile p = trace::alibaba_profile();
  p.num_nodes = 30;
  p.num_steps = 450;
  return trace::generate(p, 11);
}

TEST(MonitorExperiment, AllMethodsProduceFiniteRmse) {
  const trace::InMemoryTrace t = experiment_trace();
  MonitorExperimentOptions opts;
  opts.num_monitors = 5;
  opts.train_steps = 200;
  opts.test_steps = 200;
  for (const MonitorMethod method :
       {MonitorMethod::kProposed, MonitorMethod::kMinimumDistance,
        MonitorMethod::kTopW, MonitorMethod::kTopWUpdate,
        MonitorMethod::kBatchSelection}) {
    const MonitorExperimentResult r =
        run_monitor_experiment(t, method, opts);
    EXPECT_TRUE(std::isfinite(r.rmse)) << to_string(method);
    EXPECT_GT(r.rmse, 0.0) << to_string(method);
    EXPECT_LT(r.rmse, 1.0) << to_string(method);
    EXPECT_EQ(r.monitors.size(), 5u) << to_string(method);
    EXPECT_GE(r.selection_seconds, 0.0);
  }
}

TEST(MonitorExperiment, MoreMonitorsHelpProposedMethod) {
  const trace::InMemoryTrace t = experiment_trace();
  MonitorExperimentOptions few;
  few.num_monitors = 2;
  few.train_steps = 200;
  few.test_steps = 200;
  MonitorExperimentOptions many = few;
  many.num_monitors = 20;
  const double rmse_few =
      run_monitor_experiment(t, MonitorMethod::kProposed, few).rmse;
  const double rmse_many =
      run_monitor_experiment(t, MonitorMethod::kProposed, many).rmse;
  EXPECT_LT(rmse_many, rmse_few);
}

TEST(MonitorExperiment, ValidatesOptions) {
  const trace::InMemoryTrace t = experiment_trace();
  MonitorExperimentOptions opts;
  opts.train_steps = 400;
  opts.test_steps = 400;  // 800 > 450 steps
  EXPECT_THROW(run_monitor_experiment(t, MonitorMethod::kProposed, opts),
               InvalidArgument);
  opts.test_steps = 50;
  opts.resource = 9;
  EXPECT_THROW(run_monitor_experiment(t, MonitorMethod::kProposed, opts),
               InvalidArgument);
  opts.resource = 0;
  opts.num_monitors = 30;
  EXPECT_THROW(run_monitor_experiment(t, MonitorMethod::kProposed, opts),
               InvalidArgument);
}

TEST(MonitorExperiment, MethodNamesMatchPaper) {
  EXPECT_EQ(to_string(MonitorMethod::kProposed), "Proposed");
  EXPECT_EQ(to_string(MonitorMethod::kTopWUpdate), "Top-W-Update");
  EXPECT_EQ(to_string(MonitorMethod::kBatchSelection), "Batch Selection");
}

}  // namespace
}  // namespace resmon::gaussian
