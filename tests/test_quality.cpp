#include "cluster/quality.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace resmon::cluster {
namespace {

/// Two tight, well-separated 1-D blobs.
Matrix two_blobs(Rng& rng, std::size_t per_blob = 10) {
  Matrix points(2 * per_blob, 1);
  for (std::size_t i = 0; i < per_blob; ++i) {
    points(i, 0) = 0.1 + rng.normal(0.0, 0.01);
    points(per_blob + i, 0) = 0.9 + rng.normal(0.0, 0.01);
  }
  return points;
}

std::vector<std::size_t> two_blob_labels(std::size_t per_blob = 10) {
  std::vector<std::size_t> a(2 * per_blob, 0);
  for (std::size_t i = per_blob; i < 2 * per_blob; ++i) a[i] = 1;
  return a;
}

TEST(Silhouette, HighForWellSeparatedBlobs) {
  Rng rng(1);
  const Matrix points = two_blobs(rng);
  EXPECT_GT(silhouette(points, two_blob_labels(), 2), 0.9);
}

TEST(Silhouette, LowForRandomLabels) {
  Rng rng(2);
  const Matrix points = two_blobs(rng);
  std::vector<std::size_t> labels(20);
  for (auto& l : labels) l = rng.index(2);
  EXPECT_LT(silhouette(points, labels, 2),
            silhouette(points, two_blob_labels(), 2));
}

TEST(Silhouette, SplittingATightBlobScoresWorse) {
  Rng rng(3);
  const Matrix points = two_blobs(rng);
  // 3-way split of the low blob: 0/2 labels alternate within it.
  std::vector<std::size_t> labels = two_blob_labels();
  for (std::size_t i = 0; i < 10; i += 2) labels[i] = 2;
  EXPECT_LT(silhouette(points, labels, 3),
            silhouette(points, two_blob_labels(), 2));
}

TEST(Silhouette, Validates) {
  Matrix points(4, 1);
  EXPECT_THROW(silhouette(points, {0, 0, 0}, 2), InvalidArgument);
  EXPECT_THROW(silhouette(points, {0, 0, 0, 0}, 1), InvalidArgument);
  EXPECT_THROW(silhouette(points, {0, 0, 0, 5}, 2), InvalidArgument);
}

TEST(DaviesBouldin, LowerForBetterClustering) {
  Rng rng(4);
  const Matrix points = two_blobs(rng);
  std::vector<std::size_t> noisy = two_blob_labels();
  std::swap(noisy[0], noisy[10]);  // mislabel one pair across the blobs
  EXPECT_LT(davies_bouldin(points, two_blob_labels(), 2),
            davies_bouldin(points, noisy, 2));
}

TEST(DaviesBouldin, NonNegative) {
  Rng rng(5);
  Matrix points(30, 2);
  for (std::size_t i = 0; i < 30; ++i) {
    points(i, 0) = rng.uniform();
    points(i, 1) = rng.uniform();
  }
  std::vector<std::size_t> labels(30);
  for (std::size_t i = 0; i < 30; ++i) labels[i] = i % 3;
  EXPECT_GE(davies_bouldin(points, labels, 3), 0.0);
}

TEST(DaviesBouldin, NeedsTwoPopulatedClusters) {
  Matrix points(4, 1);
  EXPECT_THROW(davies_bouldin(points, {0, 0, 0, 0}, 2), InvalidArgument);
}

TEST(ChooseK, FindsTheTrueBlobCount) {
  Rng rng(6);
  // Three well-separated blobs.
  Matrix points(30, 1);
  for (std::size_t i = 0; i < 10; ++i) {
    points(i, 0) = 0.1 + rng.normal(0.0, 0.01);
    points(10 + i, 0) = 0.5 + rng.normal(0.0, 0.01);
    points(20 + i, 0) = 0.9 + rng.normal(0.0, 0.01);
  }
  const KSelection sel = choose_k(points, 2, 6, rng);
  EXPECT_EQ(sel.best_k, 3u);
  EXPECT_EQ(sel.ks.size(), 5u);
  // Inertia is non-increasing in K.
  for (std::size_t i = 1; i < sel.inertias.size(); ++i) {
    EXPECT_LE(sel.inertias[i], sel.inertias[i - 1] + 1e-9);
  }
}

TEST(ChooseK, ValidatesRange) {
  Matrix points(5, 1);
  Rng rng(7);
  EXPECT_THROW(choose_k(points, 1, 3, rng), InvalidArgument);
  EXPECT_THROW(choose_k(points, 3, 2, rng), InvalidArgument);
  EXPECT_THROW(choose_k(points, 2, 9, rng), InvalidArgument);
}

}  // namespace
}  // namespace resmon::cluster
