#include "transport/channel.hpp"

#include <gtest/gtest.h>

namespace resmon::transport {
namespace {

TEST(Channel, DeliversInOrder) {
  Channel ch;
  ch.send({.node = 0, .step = 1, .values = {0.5}});
  ch.send({.node = 1, .step = 1, .values = {0.7}});
  const auto msgs = ch.drain();
  ASSERT_EQ(msgs.size(), 2u);
  EXPECT_EQ(msgs[0].node, 0u);
  EXPECT_EQ(msgs[1].node, 1u);
  EXPECT_EQ(ch.pending(), 0u);
}

TEST(Channel, DrainOnEmptyReturnsNothing) {
  Channel ch;
  EXPECT_TRUE(ch.drain().empty());
}

TEST(Channel, CountsMessagesAndBytes) {
  Channel ch;
  ch.send({.node = 0, .step = 0, .values = {0.1, 0.2}});
  EXPECT_EQ(ch.messages_sent(), 1u);
  EXPECT_EQ(ch.bytes_sent(), 16u + 16u);  // header + 2 doubles
  ch.send({.node = 1, .step = 0, .values = {0.3, 0.4}});
  EXPECT_EQ(ch.messages_sent(), 2u);
}

TEST(MeasurementMessage, WireSizeScalesWithDimension) {
  MeasurementMessage one{.node = 0, .step = 0, .values = {0.0}};
  MeasurementMessage four{.node = 0, .step = 0,
                          .values = {0.0, 0.0, 0.0, 0.0}};
  EXPECT_EQ(one.wire_size(), 24u);
  EXPECT_EQ(four.wire_size(), 48u);
}

TEST(CentralStore, StartsEmpty) {
  CentralStore store(3, 1);
  EXPECT_FALSE(store.has(0));
  EXPECT_FALSE(store.complete());
  EXPECT_THROW(store.stored(0), InvalidState);
  EXPECT_THROW(store.last_update_step(0), InvalidState);
}

TEST(CentralStore, ApplyStoresValueAndStep) {
  CentralStore store(2, 2);
  store.apply({.node = 1, .step = 5, .values = {0.3, 0.4}});
  EXPECT_TRUE(store.has(1));
  EXPECT_FALSE(store.has(0));
  EXPECT_EQ(store.last_update_step(1), 5u);
  EXPECT_DOUBLE_EQ(store.stored(1)[1], 0.4);
}

TEST(CentralStore, StalenessCountsSinceLastUpdate) {
  CentralStore store(1, 1);
  store.apply({.node = 0, .step = 3, .values = {0.1}});
  EXPECT_EQ(store.staleness(0, 3), 0u);
  EXPECT_EQ(store.staleness(0, 7), 4u);
}

TEST(CentralStore, IgnoresStaleOutOfOrderMessages) {
  CentralStore store(1, 1);
  store.apply({.node = 0, .step = 5, .values = {0.5}});
  store.apply({.node = 0, .step = 3, .values = {0.3}});  // older, ignored
  EXPECT_DOUBLE_EQ(store.stored(0)[0], 0.5);
  EXPECT_EQ(store.last_update_step(0), 5u);
}

TEST(CentralStore, CompleteOnceAllNodesReport) {
  CentralStore store(2, 1);
  store.apply({.node = 0, .step = 0, .values = {0.1}});
  EXPECT_FALSE(store.complete());
  store.apply({.node = 1, .step = 0, .values = {0.2}});
  EXPECT_TRUE(store.complete());
}

TEST(CentralStore, ResourceSnapshotExtractsColumn) {
  CentralStore store(2, 2);
  store.apply({.node = 0, .step = 0, .values = {0.1, 0.9}});
  store.apply({.node = 1, .step = 0, .values = {0.2, 0.8}});
  const std::vector<double> cpu = store.resource_snapshot(0);
  const std::vector<double> mem = store.resource_snapshot(1);
  EXPECT_DOUBLE_EQ(cpu[0], 0.1);
  EXPECT_DOUBLE_EQ(cpu[1], 0.2);
  EXPECT_DOUBLE_EQ(mem[0], 0.9);
  EXPECT_DOUBLE_EQ(mem[1], 0.8);
}

TEST(CentralStore, ValidatesIndicesAndDimensions) {
  CentralStore store(2, 1);
  EXPECT_THROW(store.apply({.node = 9, .step = 0, .values = {0.1}}),
               InvalidArgument);
  EXPECT_THROW(store.apply({.node = 0, .step = 0, .values = {0.1, 0.2}}),
               InvalidArgument);
  EXPECT_THROW(store.resource_snapshot(3), InvalidArgument);
  EXPECT_THROW(CentralStore(0, 1), InvalidArgument);
}

}  // namespace
}  // namespace resmon::transport
