#include "transport/channel.hpp"

#include <algorithm>

#include <gtest/gtest.h>

#include "net/wire.hpp"

namespace resmon::transport {
namespace {

TEST(Channel, DeliversInOrder) {
  Channel ch;
  ch.send({.node = 0, .step = 1, .values = {0.5}});
  ch.send({.node = 1, .step = 1, .values = {0.7}});
  const auto msgs = ch.drain();
  ASSERT_EQ(msgs.size(), 2u);
  EXPECT_EQ(msgs[0].node, 0u);
  EXPECT_EQ(msgs[1].node, 1u);
  EXPECT_EQ(ch.pending(), 0u);
}

TEST(Channel, DrainOnEmptyReturnsNothing) {
  Channel ch;
  EXPECT_TRUE(ch.drain().empty());
}

TEST(Channel, CountsMessagesAndBytes) {
  Channel ch;
  ch.send({.node = 0, .step = 0, .values = {0.1, 0.2}});
  EXPECT_EQ(ch.messages_sent(), 1u);
  // Frame header (16) + measurement payload header (16) + 2 doubles.
  EXPECT_EQ(ch.bytes_sent(), 16u + 16u + 16u);
  ch.send({.node = 1, .step = 0, .values = {0.3, 0.4}});
  EXPECT_EQ(ch.messages_sent(), 2u);
}

TEST(MeasurementMessage, WireSizeScalesWithDimension) {
  MeasurementMessage one{.node = 0, .step = 0, .values = {0.0}};
  MeasurementMessage four{.node = 0, .step = 0,
                          .values = {0.0, 0.0, 0.0, 0.0}};
  EXPECT_EQ(one.wire_size(), 40u);
  EXPECT_EQ(four.wire_size(), 64u);
}

TEST(MeasurementMessage, WireSizeMatchesTheRealEncoder) {
  // One source of truth for bandwidth accounting: wire_size() must equal
  // the byte count the wire encoder actually produces.
  for (std::size_t d : {std::size_t{1}, std::size_t{2}, std::size_t{7}}) {
    MeasurementMessage m{.node = 3, .step = 42,
                         .values = std::vector<double>(d, 0.25)};
    EXPECT_EQ(net::wire::encode(m).size(), m.wire_size()) << "d = " << d;
  }
}

TEST(CentralStore, StartsEmpty) {
  CentralStore store(3, 1);
  EXPECT_FALSE(store.has(0));
  EXPECT_FALSE(store.complete());
  EXPECT_THROW(store.stored(0), InvalidState);
  EXPECT_THROW(store.last_update_step(0), InvalidState);
}

TEST(CentralStore, ApplyStoresValueAndStep) {
  CentralStore store(2, 2);
  store.apply({.node = 1, .step = 5, .values = {0.3, 0.4}});
  EXPECT_TRUE(store.has(1));
  EXPECT_FALSE(store.has(0));
  EXPECT_EQ(store.last_update_step(1), 5u);
  EXPECT_DOUBLE_EQ(store.stored(1)[1], 0.4);
}

TEST(CentralStore, StalenessCountsSinceLastUpdate) {
  CentralStore store(1, 1);
  store.apply({.node = 0, .step = 3, .values = {0.1}});
  EXPECT_EQ(store.staleness(0, 3), 0u);
  EXPECT_EQ(store.staleness(0, 7), 4u);
}

TEST(CentralStore, IgnoresStaleOutOfOrderMessages) {
  CentralStore store(1, 1);
  store.apply({.node = 0, .step = 5, .values = {0.5}});
  store.apply({.node = 0, .step = 3, .values = {0.3}});  // older, ignored
  EXPECT_DOUBLE_EQ(store.stored(0)[0], 0.5);
  EXPECT_EQ(store.last_update_step(0), 5u);
}

TEST(CentralStore, EqualStepDuplicateKeepsTheFirstCopy) {
  // A retransmitted (or network-duplicated) message for the already-stored
  // step must be a no-op: first write wins, nothing regresses.
  CentralStore store(2, 1);
  store.apply({.node = 0, .step = 4, .values = {0.4}});
  store.apply({.node = 0, .step = 4, .values = {0.9}});  // duplicate step
  EXPECT_DOUBLE_EQ(store.stored(0)[0], 0.4);
  EXPECT_EQ(store.last_update_step(0), 4u);
  // A genuinely fresher step still replaces it.
  store.apply({.node = 0, .step = 5, .values = {0.6}});
  EXPECT_DOUBLE_EQ(store.stored(0)[0], 0.6);
}

TEST(CentralStore, OutOfRangeNodeIsATypedErrorAndLeavesStateIntact) {
  CentralStore store(2, 1);
  store.apply({.node = 1, .step = 7, .values = {0.7}});
  EXPECT_THROW(store.apply({.node = 2, .step = 8, .values = {0.8}}),
               InvalidArgument);
  EXPECT_THROW(
      store.apply({.node = static_cast<std::size_t>(-1),
                   .step = 8,
                   .values = {0.8}}),
      InvalidArgument);
  // The rejected messages left the store untouched.
  EXPECT_FALSE(store.has(0));
  EXPECT_DOUBLE_EQ(store.stored(1)[0], 0.7);
  EXPECT_EQ(store.last_update_step(1), 7u);
}

TEST(CentralStore, StalenessAfterOutOfOrderDeliveryTracksFreshestApplied) {
  // Deliveries arrive out of order: 6 then 2. The stale message must not
  // reset staleness — age is measured against step 6, not step 2.
  CentralStore store(1, 1);
  store.apply({.node = 0, .step = 6, .values = {0.6}});
  store.apply({.node = 0, .step = 2, .values = {0.2}});
  EXPECT_EQ(store.last_update_step(0), 6u);
  EXPECT_EQ(store.staleness(0, 6), 0u);
  EXPECT_EQ(store.staleness(0, 10), 4u);
  // Querying staleness before the stored step is a contract violation.
  EXPECT_THROW(store.staleness(0, 5), InvalidArgument);
}

TEST(CentralStore, CompleteOnceAllNodesReport) {
  CentralStore store(2, 1);
  store.apply({.node = 0, .step = 0, .values = {0.1}});
  EXPECT_FALSE(store.complete());
  store.apply({.node = 1, .step = 0, .values = {0.2}});
  EXPECT_TRUE(store.complete());
}

TEST(CentralStore, ResourceSnapshotExtractsColumn) {
  CentralStore store(2, 2);
  store.apply({.node = 0, .step = 0, .values = {0.1, 0.9}});
  store.apply({.node = 1, .step = 0, .values = {0.2, 0.8}});
  const std::vector<double> cpu = store.resource_snapshot(0);
  const std::vector<double> mem = store.resource_snapshot(1);
  EXPECT_DOUBLE_EQ(cpu[0], 0.1);
  EXPECT_DOUBLE_EQ(cpu[1], 0.2);
  EXPECT_DOUBLE_EQ(mem[0], 0.9);
  EXPECT_DOUBLE_EQ(mem[1], 0.8);
}

TEST(CentralStore, OutOfOrderDeliveryUnderDelayIgnoresStaleMessages) {
  // End-to-end lossy-link path: a delayed channel reorders messages, and
  // the store must keep the freshest measurement while staleness() tracks
  // the age of what was actually applied.
  Channel ch({.max_delay_slots = 3, .seed = 11});
  CentralStore store(1, 1);
  long long freshest = -1;  // newest step applied so far
  bool saw_stale_arrival = false;
  const std::size_t sends = 40;
  for (std::size_t slot = 0; slot < sends + 4; ++slot) {
    if (slot < sends) {
      ch.send({.node = 0,
               .step = slot,
               .values = {static_cast<double>(slot) * 0.01}});
    }
    for (const MeasurementMessage& msg : ch.drain()) {
      if (static_cast<long long>(msg.step) < freshest) {
        saw_stale_arrival = true;
      }
      freshest = std::max(freshest, static_cast<long long>(msg.step));
      store.apply(msg);
      // A stale message must not regress the stored value or its step.
      EXPECT_EQ(store.last_update_step(0),
                static_cast<std::size_t>(freshest));
      EXPECT_DOUBLE_EQ(store.stored(0)[0],
                       static_cast<double>(freshest) * 0.01);
    }
    if (store.has(0)) {
      // Staleness reflects the delayed arrival: the age of the freshest
      // applied measurement, not of the latest sent one.
      EXPECT_EQ(store.staleness(0, slot),
                slot - static_cast<std::size_t>(freshest));
    }
  }
  // The chosen seed produces at least one reordered arrival, so the
  // stale-ignore path above actually executed.
  EXPECT_TRUE(saw_stale_arrival);
  EXPECT_EQ(store.last_update_step(0), sends - 1);
  EXPECT_EQ(ch.pending(), 0u);
}

TEST(CentralStore, ValidatesIndicesAndDimensions) {
  CentralStore store(2, 1);
  EXPECT_THROW(store.apply({.node = 9, .step = 0, .values = {0.1}}),
               InvalidArgument);
  EXPECT_THROW(store.apply({.node = 0, .step = 0, .values = {0.1, 0.2}}),
               InvalidArgument);
  EXPECT_THROW(store.resource_snapshot(3), InvalidArgument);
  EXPECT_THROW(CentralStore(0, 1), InvalidArgument);
}

}  // namespace
}  // namespace resmon::transport
