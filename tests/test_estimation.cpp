#include "core/estimation.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace resmon::core {
namespace {

cluster::Clustering make_clustering(std::vector<std::size_t> assignment,
                                    Matrix centroids) {
  cluster::Clustering c;
  c.assignment = std::move(assignment);
  c.centroids = std::move(centroids);
  return c;
}

// ---- alpha_scale ---------------------------------------------------------

TEST(AlphaScale, OneWhenPointStaysNearOwnCentroid) {
  // Centroids at 0.2 and 0.8; a small delta from 0.2 stays in cluster 0.
  Matrix centroids{{0.2}, {0.8}};
  const std::vector<double> delta{0.1};
  EXPECT_DOUBLE_EQ(alpha_scale(delta, centroids, 0), 1.0);
}

TEST(AlphaScale, ClampsAtBisectorBetweenCentroids) {
  // Bisector between 0.2 and 0.8 is 0.5, i.e. delta 0.3 from c0. A delta
  // of 0.6 must be scaled by 0.5 so that c0 + alpha*delta = 0.5.
  Matrix centroids{{0.2}, {0.8}};
  const std::vector<double> delta{0.6};
  EXPECT_NEAR(alpha_scale(delta, centroids, 0), 0.5, 1e-12);
}

TEST(AlphaScale, DeltaAwayFromOtherCentroidIsUnclamped) {
  Matrix centroids{{0.5}, {0.9}};
  const std::vector<double> delta{-0.4};  // away from 0.9
  EXPECT_DOUBLE_EQ(alpha_scale(delta, centroids, 0), 1.0);
}

TEST(AlphaScale, NearestOfSeveralCentroidsBinds) {
  Matrix centroids{{0.0}, {1.0}, {0.4}};
  // From c0 toward both others; the closer bisector (0.2, from the 0.4
  // centroid) binds: alpha = 0.2 / 0.8 = 0.25.
  const std::vector<double> delta{0.8};
  EXPECT_NEAR(alpha_scale(delta, centroids, 0), 0.25, 1e-12);
}

TEST(AlphaScale, WorksInTwoDimensions) {
  Matrix centroids{{0.0, 0.0}, {1.0, 0.0}};
  // Delta orthogonal to the centroid gap is never clamped.
  const std::vector<double> up{0.0, 5.0};
  EXPECT_DOUBLE_EQ(alpha_scale(up, centroids, 0), 1.0);
  // Delta along the gap is clamped at the bisector x = 0.5.
  const std::vector<double> along{1.0, 0.0};
  EXPECT_NEAR(alpha_scale(along, centroids, 0), 0.5, 1e-12);
}

TEST(AlphaScale, ZeroDeltaGivesOne) {
  Matrix centroids{{0.1}, {0.9}};
  const std::vector<double> delta{0.0};
  EXPECT_DOUBLE_EQ(alpha_scale(delta, centroids, 0), 1.0);
}

TEST(AlphaScale, ValidatesArguments) {
  Matrix centroids{{0.1}, {0.9}};
  const std::vector<double> delta{0.1};
  EXPECT_THROW(alpha_scale(delta, centroids, 5), InvalidArgument);
  const std::vector<double> wrong_dim{0.1, 0.2};
  EXPECT_THROW(alpha_scale(wrong_dim, centroids, 0), InvalidArgument);
}

TEST(AlphaScale, ScaledPointIsStillNearestToOwnCentroid) {
  // Property: after scaling, c_j + alpha*delta is never strictly closer to
  // another centroid.
  Matrix centroids{{0.1}, {0.45}, {0.8}};
  for (double raw = -1.0; raw <= 1.0; raw += 0.05) {
    const std::vector<double> delta{raw};
    const double alpha = alpha_scale(delta, centroids, 1);
    const double point = centroids(1, 0) + alpha * delta[0];
    const double own = std::fabs(point - centroids(1, 0));
    EXPECT_LE(own, std::fabs(point - centroids(0, 0)) + 1e-9) << raw;
    EXPECT_LE(own, std::fabs(point - centroids(2, 0)) + 1e-9) << raw;
  }
}

// ---- OffsetTracker -------------------------------------------------------

TEST(OffsetTracker, RejectsZeroClusters) {
  EXPECT_THROW(OffsetTracker(5, 0), InvalidArgument);
}

TEST(OffsetTracker, QueriesBeforePushThrow) {
  OffsetTracker tracker(5, 2);
  EXPECT_TRUE(tracker.empty());
  EXPECT_THROW(tracker.modal_cluster(0), InvalidState);
  EXPECT_THROW(tracker.offset(0, 0), InvalidState);
}

TEST(OffsetTracker, PushValidatesShapes) {
  OffsetTracker tracker(5, 2);
  Matrix snapshot(3, 1);
  // Wrong cluster count.
  EXPECT_THROW(
      tracker.push(make_clustering({0, 0, 0}, Matrix(3, 1)), snapshot),
      InvalidArgument);
  // Assignment size mismatch.
  EXPECT_THROW(tracker.push(make_clustering({0, 0}, Matrix(2, 1)), snapshot),
               InvalidArgument);
  // Dimension mismatch between snapshot and centroids.
  EXPECT_THROW(
      tracker.push(make_clustering({0, 0, 0}, Matrix(2, 2)), snapshot),
      InvalidArgument);
}

TEST(OffsetTracker, ModalClusterPicksMostFrequent) {
  OffsetTracker tracker(2, 2);  // M' = 2 -> window of 3
  Matrix snapshot(1, 1);
  Matrix centroids{{0.2}, {0.8}};
  tracker.push(make_clustering({0}, centroids), snapshot);
  tracker.push(make_clustering({1}, centroids), snapshot);
  tracker.push(make_clustering({1}, centroids), snapshot);
  EXPECT_EQ(tracker.modal_cluster(0), 1u);
}

TEST(OffsetTracker, ModalClusterTiesBreakLow) {
  OffsetTracker tracker(1, 3);  // window of 2
  Matrix snapshot(1, 1);
  Matrix centroids{{0.1}, {0.5}, {0.9}};
  tracker.push(make_clustering({2}, centroids), snapshot);
  tracker.push(make_clustering({1}, centroids), snapshot);
  EXPECT_EQ(tracker.modal_cluster(0), 1u);  // 1 and 2 tie; lower wins
}

TEST(OffsetTracker, WindowIsBounded) {
  OffsetTracker tracker(1, 2);  // keeps at most M' + 1 = 2 entries
  Matrix snapshot(1, 1);
  Matrix centroids{{0.2}, {0.8}};
  for (int i = 0; i < 10; ++i) {
    tracker.push(make_clustering({0}, centroids), snapshot);
  }
  EXPECT_EQ(tracker.steps(), 2u);
}

TEST(OffsetTracker, OffsetIsAverageOfInClusterDeviations) {
  // Node sits 0.05 above its centroid on every step -> offset = 0.05.
  OffsetTracker tracker(2, 2);
  Matrix centroids{{0.2}, {0.8}};
  Matrix snapshot(1, 1);
  snapshot(0, 0) = 0.25;
  for (int i = 0; i < 3; ++i) {
    tracker.push(make_clustering({0}, centroids), snapshot);
  }
  EXPECT_NEAR(tracker.offset(0, 0)[0], 0.05, 1e-12);
}

TEST(OffsetTracker, OffsetClampedWhenDeviationCrossesBisector) {
  // Node at 0.7 relative to centroid 0.2 with the other centroid at 0.8:
  // the bisector is 0.5, so alpha = 0.3/0.5 and the contribution per step
  // is 0.3 (point pinned at the bisector).
  OffsetTracker tracker(0, 2);
  Matrix centroids{{0.2}, {0.8}};
  Matrix snapshot(1, 1);
  snapshot(0, 0) = 0.7;
  tracker.push(make_clustering({1}, centroids), snapshot);
  EXPECT_NEAR(tracker.offset(0, 0)[0], 0.3, 1e-12);
}

TEST(OffsetTracker, OffsetRelativeToRequestedCluster) {
  OffsetTracker tracker(0, 2);
  Matrix centroids{{0.2}, {0.8}};
  Matrix snapshot(1, 1);
  snapshot(0, 0) = 0.75;
  tracker.push(make_clustering({1}, centroids), snapshot);
  // Relative to cluster 1 the deviation is -0.05 (in-cluster, alpha = 1).
  EXPECT_NEAR(tracker.offset(0, 1)[0], -0.05, 1e-12);
}

TEST(OffsetTracker, NodeCountMustStayConstant) {
  OffsetTracker tracker(3, 2);
  Matrix centroids{{0.2}, {0.8}};
  tracker.push(make_clustering({0, 1}, centroids), Matrix(2, 1));
  EXPECT_THROW(
      tracker.push(make_clustering({0, 1, 0}, centroids), Matrix(3, 1)),
      InvalidArgument);
}

TEST(OffsetTracker, ClusterIndexValidated) {
  OffsetTracker tracker(3, 2);
  Matrix centroids{{0.2}, {0.8}};
  tracker.push(make_clustering({0}, centroids), Matrix(1, 1));
  EXPECT_THROW(tracker.offset(0, 7), InvalidArgument);
}

}  // namespace
}  // namespace resmon::core
