// Graceful-degradation tests: the controller's LIVE -> STALE -> DEAD
// staleness machine over real sockets — barrier skip, sample-and-hold
// substitution, eviction, rejoin, and controller-side partitions.
//
// Silence is measured on a hand-advanced ManualClock injected through
// ControllerOptions::staleness_clock, so every transition below happens at
// an exact, asserted slot regardless of scheduler or sanitizer slowdowns —
// no sleeps, no wall-clock deadlines, no flakes.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "agg/aggregator.hpp"
#include "collect/fleet_collector.hpp"
#include "faultnet/agent_hook.hpp"
#include "golden_fixture.hpp"
#include "net/agent.hpp"
#include "net/controller.hpp"
#include "net/socket.hpp"
#include "obs/metrics.hpp"
#include "scenario/manual_clock.hpp"
#include "transport/channel.hpp"

namespace resmon::net {
namespace {

constexpr int kMsPerSlot = 100;

AgentOptions agent_options(const Controller& controller, std::uint32_t node,
                           std::size_t num_resources) {
  AgentOptions opts;
  opts.port = controller.port();
  opts.node = node;
  opts.num_resources = static_cast<std::uint32_t>(num_resources);
  return opts;
}

const auto kAlways =
    collect::make_policy_factory(collect::PolicyKind::kAlways, 1.0);

/// Connect a fleet of agents whose hello/ack handshakes block until the
/// controller pumps: each connect runs on a helper thread while the main
/// thread drives wait_for_agents.
std::vector<std::unique_ptr<Agent>> connect_fleet(
    Controller& controller, std::size_t count, std::size_t num_resources) {
  std::vector<std::unique_ptr<Agent>> agents(count);
  std::vector<std::thread> connectors;
  connectors.reserve(count);
  for (std::uint32_t node = 0; node < count; ++node) {
    agents[node] = std::make_unique<Agent>(
        agent_options(controller, node, num_resources), kAlways());
    connectors.emplace_back([&, node] { agents[node]->connect(); });
  }
  EXPECT_TRUE(controller.wait_for_agents(count, 10000));
  for (std::thread& th : connectors) th.join();
  return agents;
}

/// One lock-step slot: frames are already written, the manual clock has
/// advanced, and the barrier may need extra pumps (each aging the clock one
/// more slot) before staleness lets a silent node be skipped.
std::optional<std::vector<transport::MeasurementMessage>> collect_aging(
    Controller& controller, scenario::ManualClock& clock, std::size_t t) {
  for (int attempt = 0; attempt < 16; ++attempt) {
    auto messages = controller.collect_slot(t, 200);
    if (messages.has_value()) return messages;
    clock.advance_ms(kMsPerSlot);
  }
  return std::nullopt;
}

TEST(Degradation, SilentNodeGoesStaleThenDeadWhileTheBarrierCompletes) {
  constexpr std::size_t kSlots = 10;
  constexpr std::size_t kQuitAfter = 5;  // node 1 dies after this many slots
  const trace::InMemoryTrace trace =
      resmon::testing::make_golden_trace("alibaba", 2, kSlots, 21);

  scenario::ManualClock clock;
  obs::MetricsRegistry registry;
  ControllerOptions copts;
  copts.num_nodes = 2;
  copts.num_resources = trace.num_resources();
  copts.metrics = &registry;
  // 1.5 / 4.5 slots of silence: the half-slot offset keeps the thresholds
  // off exact multiples, so a live node (whose silence peaks at whole
  // slots) can never tie the limit.
  copts.stale_after_ms = kMsPerSlot + kMsPerSlot / 2;
  copts.dead_after_ms = 4 * kMsPerSlot + kMsPerSlot / 2;
  copts.staleness_clock = clock.now_fn();
  Controller controller(Socket::listen_tcp("127.0.0.1", 0), copts);

  auto agents = connect_fleet(controller, 2, trace.num_resources());
  transport::CentralStore store(2, trace.num_resources());
  for (std::size_t t = 0; t < kSlots; ++t) {
    if (t == kQuitAfter) agents[1].reset();  // the quiet death
    for (std::size_t node = 0; node < 2; ++node) {
      if (agents[node]) agents[node]->observe(t, trace.measurement(node, t));
    }
    clock.advance_ms(kMsPerSlot);
    auto messages = collect_aging(controller, clock, t);
    ASSERT_TRUE(messages.has_value()) << "slot " << t << " timed out";
    for (const auto& m : *messages) store.apply(m);
  }

  // Node 1 fell silent after slot 4. Its frame for slot 4 landed at manual
  // time 500ms, so it crossed stale_after during slot 5's barrier wait
  // (whose retry ages the clock one extra slot) and dead_after during slot
  // 8's — every count below is exact.
  EXPECT_EQ(controller.stale_transitions(), 1u);
  EXPECT_EQ(controller.dead_transitions(), 1u);
  EXPECT_EQ(controller.degraded_slots(), kSlots - kQuitAfter);
  EXPECT_EQ(controller.node_state(1), NodeState::kDead);
  // Node 0 kept observing every slot, so the frozen clock leaves it LIVE —
  // with wall-clock silence it would have aged out after the loop too.
  EXPECT_EQ(controller.node_state(0), NodeState::kLive);
  // Sample-and-hold: the silent node's last sample stays in the store.
  EXPECT_TRUE(store.has(1));
  EXPECT_EQ(store.last_update_step(1), kQuitAfter - 1);

  // The states are visible on the wire exposition.
  const std::string text = registry.render_text();
  EXPECT_NE(text.find("resmon_net_node_state{node=\"1\"} 2"),
            std::string::npos)
      << text;
}

TEST(Degradation, RejoiningNodeIsPromotedBackToLive) {
  const trace::InMemoryTrace trace =
      resmon::testing::make_golden_trace("alibaba", 1, 10, 21);

  scenario::ManualClock clock;
  ControllerOptions copts;
  copts.num_nodes = 1;
  copts.num_resources = trace.num_resources();
  copts.stale_after_ms = kMsPerSlot + kMsPerSlot / 2;
  copts.dead_after_ms = 2 * kMsPerSlot + kMsPerSlot / 2;
  copts.staleness_clock = clock.now_fn();
  Controller controller(Socket::listen_tcp("127.0.0.1", 0), copts);

  {
    auto agents = connect_fleet(controller, 1, trace.num_resources());
    agents[0]->observe(0, trace.measurement(0, 0));
    ASSERT_TRUE(controller.collect_slot(0, 5000).has_value());
  }  // agent gone afterwards: node 0 falls silent

  // Age the silence three slots past the frame: STALE, then DEAD, purely
  // from the manual clock — pump_idle only runs the timers.
  clock.advance_ms(3 * kMsPerSlot);
  controller.pump_idle(50);
  EXPECT_EQ(controller.node_state(0), NodeState::kDead);

  // A restarted agent resumes mid-run: the fresh hello alone rejoins the
  // node, and its progress picks up where the new process starts. With
  // every node DEAD the slot barrier is trivially complete, so the rejoin
  // handshake must be pumped explicitly before collecting the slot.
  Agent restarted(agent_options(controller, 0, trace.num_resources()),
                  kAlways());
  std::thread connector([&] { restarted.connect(); });
  for (int rounds = 0;
       rounds < 1000 && controller.node_state(0) != NodeState::kLive;
       ++rounds) {
    controller.pump_idle(10);
  }
  connector.join();
  restarted.observe(5, trace.measurement(0, 5));
  auto messages = controller.collect_slot(5, 5000);
  ASSERT_TRUE(messages.has_value());
  ASSERT_EQ(messages->size(), 1u);
  EXPECT_EQ(controller.node_state(0), NodeState::kLive);
  EXPECT_EQ(controller.rejoins(), 1u);
}

TEST(Degradation, AggregatorShardStalenessPropagatesToRootAccounting) {
  // Two-tier twin of SilentNodeGoesStaleThenDead: the same 2-node fleet and
  // the same quiet death, but the agents now front an Aggregator whose
  // local staleness machine (same ManualClock thresholds) must (a) degrade
  // the shard barrier locally and (b) propagate the verdict upstream so
  // the root's degraded-slot accounting matches the single-tier run
  // exactly — 1 stale transition, 1 dead transition, kSlots - kQuitAfter
  // degraded slots.
  constexpr std::size_t kSlots = 10;
  constexpr std::size_t kQuitAfter = 5;
  const trace::InMemoryTrace trace =
      resmon::testing::make_golden_trace("alibaba", 2, kSlots, 21);

  // Root: staleness disabled — in a two-tier topology the shard owns
  // per-node silence; the root only consumes summary degraded counts.
  obs::MetricsRegistry root_registry;
  ControllerOptions copts;
  copts.num_nodes = 2;
  copts.num_resources = trace.num_resources();
  copts.num_shards = 1;
  copts.metrics = &root_registry;
  Controller root(Socket::listen_tcp("127.0.0.1", 0), copts);

  scenario::ManualClock clock;
  agg::AggregatorOptions aopts;
  aopts.shard = 0;
  aopts.first_node = 0;
  aopts.num_nodes = 2;
  aopts.num_resources = trace.num_resources();
  aopts.upstream_port = root.port();
  aopts.stale_after_ms = kMsPerSlot + kMsPerSlot / 2;
  aopts.dead_after_ms = 4 * kMsPerSlot + kMsPerSlot / 2;
  aopts.staleness_clock = clock.now_fn();
  aopts.status_every_slots = 0;  // censuses only when asked below
  agg::Aggregator aggregator(Socket::listen_tcp("127.0.0.1", 0), aopts);

  // Pump the root until the connector thread reports the handshake done —
  // polling the aggregator's own state here would race its writer thread.
  std::atomic<bool> hello_done{false};
  std::thread connector([&] {
    aggregator.connect_upstream();
    hello_done.store(true, std::memory_order_release);
  });
  while (!hello_done.load(std::memory_order_acquire)) root.pump_idle(10);
  connector.join();
  ASSERT_TRUE(aggregator.upstream_connected());

  auto agents =
      connect_fleet(aggregator.downstream(), 2, trace.num_resources());
  transport::CentralStore store(2, trace.num_resources());
  for (std::size_t t = 0; t < kSlots; ++t) {
    if (t == kQuitAfter) agents[1].reset();  // the quiet death
    for (std::size_t node = 0; node < 2; ++node) {
      if (agents[node]) agents[node]->observe(t, trace.measurement(node, t));
    }
    clock.advance_ms(kMsPerSlot);
    // Shard-side barrier with the same aging retries as the single-tier
    // collect_aging: a timed-out attempt forwards nothing, the clock ages
    // one slot, and the retry lets staleness unblock the barrier.
    bool forwarded = false;
    for (int attempt = 0; attempt < 16 && !forwarded; ++attempt) {
      forwarded = aggregator.forward_slot(t, 200);
      if (!forwarded) clock.advance_ms(kMsPerSlot);
    }
    ASSERT_TRUE(forwarded) << "shard slot " << t << " timed out";
    auto messages = root.collect_slot(t, 5000);
    ASSERT_TRUE(messages.has_value()) << "root slot " << t << " timed out";
    // Post-death slots deliver exactly the surviving node's measurement,
    // the same as the single-tier barrier skipping the silent node.
    EXPECT_EQ(messages->size(), t >= kQuitAfter ? 1u : 2u) << "slot " << t;
    for (const auto& m : *messages) store.apply(m);
  }

  // The shard saw the same transition timeline as the single-tier twin...
  const Controller& shard = aggregator.downstream();
  EXPECT_EQ(shard.stale_transitions(), 1u);
  EXPECT_EQ(shard.dead_transitions(), 1u);
  EXPECT_EQ(shard.degraded_slots(), kSlots - kQuitAfter);
  EXPECT_EQ(shard.node_state(1), NodeState::kDead);
  EXPECT_EQ(shard.node_state(0), NodeState::kLive);

  // ...every degraded verdict rode its slot summary upstream...
  EXPECT_EQ(aggregator.degraded_slots_forwarded(), kSlots - kQuitAfter);

  // ...and the root's accounting matches the single-tier run exactly,
  // without running a staleness machine of its own.
  EXPECT_EQ(root.degraded_slots(), kSlots - kQuitAfter);
  EXPECT_EQ(root.summaries_received(), kSlots);

  // Sample-and-hold survives the extra tier: the dead node's last sample
  // reached the root and stays in the store.
  EXPECT_TRUE(store.has(1));
  EXPECT_EQ(store.last_update_step(1), kQuitAfter - 1);

  // A census reports the shard's verdicts on the root's exposition.
  aggregator.send_status();
  root.pump_idle(50);
  const std::string text = root_registry.render_text();
  EXPECT_NE(text.find("resmon_net_shard_dead_nodes{shard=\"0\"} 1"),
            std::string::npos)
      << text;
}

TEST(Degradation, BlockHookDiscardsPartitionWindowFrames) {
  constexpr std::size_t kSlots = 10;
  const trace::InMemoryTrace trace =
      resmon::testing::make_golden_trace("alibaba", 1, kSlots, 21);

  // The clock never advances: staleness can't interfere no matter how
  // slowly a sanitized run delivers the frames.
  scenario::ManualClock clock;
  ControllerOptions copts;
  copts.num_nodes = 1;
  copts.num_resources = trace.num_resources();
  copts.staleness_clock = clock.now_fn();
  copts.block_hook = faultnet::make_controller_block_hook(
      faultnet::FaultSpec::parse("partition=3-5;nodes=0"));
  Controller controller(Socket::listen_tcp("127.0.0.1", 0), copts);

  auto agents = connect_fleet(controller, 1, trace.num_resources());
  for (std::size_t t = 0; t < kSlots; ++t) {
    agents[0]->observe(t, trace.measurement(0, t));
  }

  // Slots outside the window deliver; in-window frames were eaten before
  // they touched progress or the inbox — but the step-6 frame had already
  // advanced the node's progress past them, so the barrier never stalls.
  for (std::size_t t = 0; t < kSlots; ++t) {
    auto messages = controller.collect_slot(t, 10000);
    ASSERT_TRUE(messages.has_value()) << "slot " << t << " timed out";
    EXPECT_EQ(messages->size(), (t >= 3 && t <= 5) ? 0u : 1u)
        << "slot " << t;
  }
  EXPECT_EQ(controller.blocked_frames(), 3u);
}

}  // namespace
}  // namespace resmon::net
