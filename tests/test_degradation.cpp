// Graceful-degradation tests: the controller's LIVE -> STALE -> DEAD
// staleness machine over real sockets — barrier skip, sample-and-hold
// substitution, eviction, rejoin, and controller-side partitions.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "collect/fleet_collector.hpp"
#include "faultnet/agent_hook.hpp"
#include "net/agent.hpp"
#include "net/controller.hpp"
#include "net/socket.hpp"
#include "obs/metrics.hpp"
#include "trace/synthetic.hpp"
#include "transport/channel.hpp"

namespace resmon::net {
namespace {

trace::InMemoryTrace make_trace(std::size_t nodes, std::size_t steps) {
  trace::SyntheticProfile profile = trace::profile_by_name("alibaba");
  profile.num_nodes = nodes;
  profile.num_steps = steps;
  return trace::generate(profile, 21);
}

AgentOptions agent_options(const Controller& controller, std::uint32_t node,
                           std::size_t num_resources) {
  AgentOptions opts;
  opts.port = controller.port();
  opts.node = node;
  opts.num_resources = static_cast<std::uint32_t>(num_resources);
  return opts;
}

const auto kAlways =
    collect::make_policy_factory(collect::PolicyKind::kAlways, 1.0);

TEST(Degradation, SilentNodeGoesStaleThenDeadWhileTheBarrierCompletes) {
  constexpr std::size_t kSlots = 10;
  constexpr std::size_t kQuitAfter = 5;  // node 1 dies after this many slots
  const trace::InMemoryTrace trace = make_trace(2, kSlots);

  obs::MetricsRegistry registry;
  ControllerOptions copts;
  copts.num_nodes = 2;
  copts.num_resources = trace.num_resources();
  copts.metrics = &registry;
  copts.stale_after_ms = 150;
  copts.dead_after_ms = 450;
  Controller controller(Socket::listen_tcp("127.0.0.1", 0), copts);

  std::vector<std::thread> agents;
  for (std::uint32_t node = 0; node < 2; ++node) {
    agents.emplace_back([&, node] {
      Agent agent(agent_options(controller, node, trace.num_resources()),
                  kAlways());
      agent.connect();
      const std::size_t slots = node == 1 ? kQuitAfter : kSlots;
      for (std::size_t t = 0; t < slots; ++t) {
        agent.observe(t, trace.measurement(node, t));
        // Pace the run so silence is measured in wall-clock, like a real
        // monitoring cadence.
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
      }
    });
  }

  ASSERT_TRUE(controller.wait_for_agents(2, 10000));
  transport::CentralStore store(2, trace.num_resources());
  for (std::size_t t = 0; t < kSlots; ++t) {
    auto messages = controller.collect_slot(t, 10000);
    ASSERT_TRUE(messages.has_value()) << "slot " << t << " timed out";
    for (const auto& m : *messages) store.apply(m);
  }
  for (std::thread& th : agents) th.join();

  // Node 1 fell silent: the barrier kept completing by skipping it, its
  // last sample stayed in the store (sample-and-hold), and the verdict
  // reached STALE and then — after dead_after_ms — DEAD.
  EXPECT_GE(controller.stale_transitions(), 1u);
  EXPECT_GE(controller.degraded_slots(), 1u);
  EXPECT_NE(controller.node_state(1), NodeState::kLive);
  EXPECT_TRUE(store.has(1));
  EXPECT_EQ(store.last_update_step(1), kQuitAfter - 1);

  // Let the silence age past dead_after_ms; pump_idle drives the timers.
  // (Node 0 ages out too once its run is over — that is the policy working,
  // not a failure, so only node 1's verdict is asserted.)
  controller.pump_idle(600);
  EXPECT_EQ(controller.node_state(1), NodeState::kDead);
  EXPECT_GE(controller.dead_transitions(), 1u);

  // The states are visible on the wire exposition.
  const std::string text = registry.render_text();
  EXPECT_NE(text.find("resmon_net_node_state{node=\"1\"} 2"),
            std::string::npos)
      << text;
}

TEST(Degradation, RejoiningNodeIsPromotedBackToLive) {
  const trace::InMemoryTrace trace = make_trace(1, 10);

  ControllerOptions copts;
  copts.num_nodes = 1;
  copts.num_resources = trace.num_resources();
  copts.stale_after_ms = 100;
  copts.dead_after_ms = 250;
  Controller controller(Socket::listen_tcp("127.0.0.1", 0), copts);

  // Handshakes need the controller pumping, so agents run in threads while
  // the main thread drives the event loop.
  std::thread first([&] {
    Agent agent(agent_options(controller, 0, trace.num_resources()),
                kAlways());
    agent.connect();
    agent.observe(0, trace.measurement(0, 0));
  });  // agent gone afterwards: node 0 falls silent
  ASSERT_TRUE(controller.wait_for_agents(1, 5000));
  ASSERT_TRUE(controller.collect_slot(0, 5000).has_value());
  first.join();
  controller.pump_idle(400);
  EXPECT_EQ(controller.node_state(0), NodeState::kDead);

  // A restarted agent resumes mid-run: the fresh hello alone rejoins the
  // node, and its progress picks up where the new process starts. With
  // every node DEAD the slot barrier is trivially complete, so the rejoin
  // handshake must be pumped explicitly before collecting the slot.
  std::thread restarted([&] {
    Agent agent(agent_options(controller, 0, trace.num_resources()),
                kAlways());
    agent.connect();
    agent.observe(5, trace.measurement(0, 5));
  });
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (controller.node_state(0) != NodeState::kLive &&
         std::chrono::steady_clock::now() < deadline) {
    controller.pump_idle(50);
  }
  auto messages = controller.collect_slot(5, 5000);
  restarted.join();
  ASSERT_TRUE(messages.has_value());
  ASSERT_EQ(messages->size(), 1u);
  EXPECT_EQ(controller.node_state(0), NodeState::kLive);
  EXPECT_GE(controller.rejoins(), 1u);
}

TEST(Degradation, BlockHookDiscardsPartitionWindowFrames) {
  constexpr std::size_t kSlots = 10;
  const trace::InMemoryTrace trace = make_trace(1, kSlots);

  ControllerOptions copts;
  copts.num_nodes = 1;
  copts.num_resources = trace.num_resources();
  copts.block_hook = faultnet::make_controller_block_hook(
      faultnet::FaultSpec::parse("partition=3-5;nodes=0"));
  Controller controller(Socket::listen_tcp("127.0.0.1", 0), copts);

  std::thread agent_thread([&] {
    Agent agent(agent_options(controller, 0, trace.num_resources()),
                kAlways());
    agent.connect();
    for (std::size_t t = 0; t < kSlots; ++t) {
      agent.observe(t, trace.measurement(0, t));
    }
  });

  ASSERT_TRUE(controller.wait_for_agents(1, 10000));
  // Slots outside the window deliver; in-window frames were eaten before
  // they touched progress or the inbox — but the step-6 frame had already
  // advanced the node's progress past them, so the barrier never stalls.
  for (std::size_t t = 0; t < kSlots; ++t) {
    auto messages = controller.collect_slot(t, 10000);
    ASSERT_TRUE(messages.has_value()) << "slot " << t << " timed out";
    EXPECT_EQ(messages->size(), (t >= 3 && t <= 5) ? 0u : 1u)
        << "slot " << t;
  }
  agent_thread.join();
  EXPECT_EQ(controller.blocked_frames(), 3u);
}

}  // namespace
}  // namespace resmon::net
