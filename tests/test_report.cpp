#include "core/report.hpp"

#include <sstream>

#include <gtest/gtest.h>

#include "trace/synthetic.hpp"

namespace resmon::core {
namespace {

MonitoringPipeline make_pipeline(const trace::Trace& t) {
  PipelineOptions o;
  o.num_clusters = 3;
  o.schedule = {.initial_steps = 30, .retrain_interval = 50};
  return MonitoringPipeline(t, o);
}

TEST(Report, RequiresAtLeastOneStep) {
  trace::SyntheticProfile p = trace::google_profile();
  p.num_nodes = 10;
  p.num_steps = 50;
  const trace::InMemoryTrace t = trace::generate(p, 1);
  MonitoringPipeline pipeline = make_pipeline(t);
  EXPECT_THROW(make_report(pipeline), InvalidArgument);
}

TEST(Report, SummarizesEveryClusterOfEveryView) {
  trace::SyntheticProfile p = trace::google_profile();
  p.num_nodes = 12;
  p.num_steps = 60;
  const trace::InMemoryTrace t = trace::generate(p, 2);
  MonitoringPipeline pipeline = make_pipeline(t);
  pipeline.run(60);
  const MonitoringReport report = make_report(pipeline);

  EXPECT_EQ(report.step, 59u);
  EXPECT_EQ(report.num_nodes, 12u);
  EXPECT_NEAR(report.average_frequency, 0.3, 0.05);
  EXPECT_GT(report.bytes_sent, 0u);
  EXPECT_EQ(report.messages_dropped, 0u);
  // 2 resources x 3 clusters.
  ASSERT_EQ(report.clusters.size(), 6u);
  for (std::size_t v = 0; v < 2; ++v) {
    std::size_t total = 0;
    for (const ClusterSummary& c : report.clusters) {
      if (c.view != v) continue;
      total += c.size;
      EXPECT_GE(c.centroid, 0.0);
      EXPECT_LE(c.centroid, 1.0);
      EXPECT_FALSE(c.model.empty());
    }
    EXPECT_EQ(total, 12u);  // cluster sizes partition the fleet
  }
}

TEST(Report, ModelNamesReflectTrainingState) {
  trace::SyntheticProfile p = trace::google_profile();
  p.num_nodes = 10;
  p.num_steps = 100;
  const trace::InMemoryTrace t = trace::generate(p, 3);
  PipelineOptions o;
  o.num_clusters = 2;
  o.forecaster = forecast::ForecasterKind::kArima;
  o.schedule = {.initial_steps = 50, .retrain_interval = 200};
  MonitoringPipeline pipeline(t, o);

  pipeline.run(10);  // before the initial fit
  for (const ClusterSummary& c : make_report(pipeline).clusters) {
    EXPECT_EQ(c.model, "(collecting)");
    EXPECT_EQ(c.fits, 0u);
  }
  pipeline.run(60);  // past the initial fit
  for (const ClusterSummary& c : make_report(pipeline).clusters) {
    EXPECT_NE(c.model, "(collecting)");
    EXPECT_GE(c.fits, 1u);
  }
}

TEST(Report, PrintsAllClusters) {
  trace::SyntheticProfile p = trace::google_profile();
  p.num_nodes = 10;
  p.num_steps = 40;
  const trace::InMemoryTrace t = trace::generate(p, 4);
  MonitoringPipeline pipeline = make_pipeline(t);
  pipeline.run(40);
  std::ostringstream os;
  make_report(pipeline).print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("monitoring report @ step 39"), std::string::npos);
  EXPECT_NE(out.find("CPU"), std::string::npos);
  EXPECT_NE(out.find("Memory"), std::string::npos);
}

TEST(Report, CountsDroppedMessages) {
  trace::SyntheticProfile p = trace::google_profile();
  p.num_nodes = 10;
  p.num_steps = 80;
  const trace::InMemoryTrace t = trace::generate(p, 5);
  PipelineOptions o;
  o.num_clusters = 2;
  o.schedule = {.initial_steps = 30, .retrain_interval = 50};
  o.channel.drop_probability = 0.3;
  o.channel.seed = 6;
  MonitoringPipeline pipeline(t, o);
  pipeline.run(80);
  EXPECT_GT(make_report(pipeline).messages_dropped, 0u);
}

}  // namespace
}  // namespace resmon::core
