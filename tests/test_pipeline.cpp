#include "core/pipeline.hpp"

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "trace/synthetic.hpp"

namespace resmon::core {
namespace {

trace::InMemoryTrace small_trace(std::size_t nodes = 20,
                                 std::size_t steps = 300,
                                 std::uint64_t seed = 42) {
  trace::SyntheticProfile p = trace::alibaba_profile();
  p.num_nodes = nodes;
  p.num_steps = steps;
  return trace::generate(p, seed);
}

PipelineOptions fast_options() {
  PipelineOptions o;
  o.num_clusters = 3;
  o.schedule = {.initial_steps = 50, .retrain_interval = 100};
  return o;
}

TEST(Pipeline, ValidatesOptions) {
  const trace::InMemoryTrace t = small_trace();
  PipelineOptions o = fast_options();
  o.num_clusters = 0;
  EXPECT_THROW(MonitoringPipeline(t, o), InvalidArgument);
  o = fast_options();
  o.num_clusters = 100;  // > N
  EXPECT_THROW(MonitoringPipeline(t, o), InvalidArgument);
  o = fast_options();
  o.temporal_window = 0;
  EXPECT_THROW(MonitoringPipeline(t, o), InvalidArgument);
}

TEST(Pipeline, StepAdvancesAndStopsAtTraceEnd) {
  const trace::InMemoryTrace t = small_trace(10, 30);
  MonitoringPipeline p(t, fast_options());
  EXPECT_EQ(p.current_step(), 0u);
  p.run(30);
  EXPECT_TRUE(p.done());
  EXPECT_EQ(p.current_step(), 30u);
  EXPECT_THROW(p.step(), InvalidArgument);
}

TEST(Pipeline, PerResourceViewsByDefault) {
  const trace::InMemoryTrace t = small_trace(10, 20);
  MonitoringPipeline p(t, fast_options());
  p.run(5);
  EXPECT_EQ(p.num_views(), t.num_resources());
  EXPECT_EQ(p.tracker(0).k(), 3u);
  EXPECT_THROW(p.tracker(5), InvalidArgument);
}

TEST(Pipeline, JointClusteringUsesOneView) {
  const trace::InMemoryTrace t = small_trace(10, 20);
  PipelineOptions o = fast_options();
  o.cluster_per_resource = false;
  MonitoringPipeline p(t, o);
  p.run(5);
  EXPECT_EQ(p.num_views(), 1u);
}

TEST(Pipeline, ForecastBeforeStepThrows) {
  const trace::InMemoryTrace t = small_trace(10, 20);
  MonitoringPipeline p(t, fast_options());
  EXPECT_THROW(p.forecast_all(0), InvalidArgument);
}

TEST(Pipeline, HorizonZeroReturnsStoredMeasurements) {
  const trace::InMemoryTrace t = small_trace(10, 20);
  PipelineOptions o = fast_options();
  o.policy = collect::PolicyKind::kAlways;  // store always fresh
  MonitoringPipeline p(t, o);
  p.run(7);
  const Matrix z = p.forecast_all(0);
  for (std::size_t i = 0; i < t.num_nodes(); ++i) {
    for (std::size_t r = 0; r < t.num_resources(); ++r) {
      EXPECT_DOUBLE_EQ(z(i, r), t.value(i, 6, r));
    }
  }
  EXPECT_NEAR(p.rmse_at(0), 0.0, 1e-12);
}

TEST(Pipeline, WithB1AndKNRmseAtZeroIsZero) {
  // Full transmission and one cluster per node: stored state is exact.
  const trace::InMemoryTrace t = small_trace(8, 15);
  PipelineOptions o = fast_options();
  o.policy = collect::PolicyKind::kAlways;
  o.num_clusters = 8;
  MonitoringPipeline p(t, o);
  p.run(10);
  EXPECT_NEAR(p.rmse_at(0), 0.0, 1e-12);
  // And the intermediate RMSE reflects only clustering granularity (here
  // every node its own cluster, fresh data -> 0).
  EXPECT_NEAR(p.intermediate_rmse(), 0.0, 1e-9);
}

TEST(Pipeline, ForecastsAreFiniteAndInPlausibleRange) {
  const trace::InMemoryTrace t = small_trace(15, 120);
  MonitoringPipeline p(t, fast_options());
  p.run(80);
  for (const std::size_t h : {1u, 5u, 20u}) {
    const Matrix f = p.forecast_all(h);
    for (std::size_t i = 0; i < t.num_nodes(); ++i) {
      for (std::size_t r = 0; r < t.num_resources(); ++r) {
        EXPECT_TRUE(std::isfinite(f(i, r)));
        EXPECT_GT(f(i, r), -0.5);
        EXPECT_LT(f(i, r), 1.5);
      }
    }
  }
}

TEST(Pipeline, RmseAtValidatesBounds) {
  const trace::InMemoryTrace t = small_trace(10, 30);
  MonitoringPipeline p(t, fast_options());
  p.run(30);
  EXPECT_THROW(p.rmse_at(5), InvalidArgument);  // t_last + 5 >= 30
  EXPECT_NO_THROW(p.rmse_at(0));
}

TEST(Pipeline, ModelsObserveEveryStep) {
  const trace::InMemoryTrace t = small_trace(12, 60);
  MonitoringPipeline p(t, fast_options());
  p.run(60);
  for (std::size_t v = 0; v < p.num_views(); ++v) {
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_EQ(p.model(v, j).observations(), 60u);
    }
  }
  EXPECT_THROW(p.model(0, 9), InvalidArgument);
}

TEST(Pipeline, ModelsFitOnSchedule) {
  const trace::InMemoryTrace t = small_trace(12, 120);
  PipelineOptions o = fast_options();
  o.schedule = {.initial_steps = 40, .retrain_interval = 30};
  MonitoringPipeline p(t, o);
  p.run(120);
  // Fits at 40, 70, 100 -> 3 fits.
  EXPECT_EQ(p.model(0, 0).fits_completed(), 3u);
}

TEST(Pipeline, SampleHoldForecastHoldsCentroids) {
  const trace::InMemoryTrace t = small_trace(10, 80);
  PipelineOptions o = fast_options();
  o.schedule = {.initial_steps = 10, .retrain_interval = 50};
  MonitoringPipeline p(t, o);
  p.run(60);
  // Sample-and-hold: forecast is independent of horizon.
  const Matrix f1 = p.forecast_all(1);
  const Matrix f9 = p.forecast_all(9);
  for (std::size_t i = 0; i < t.num_nodes(); ++i) {
    for (std::size_t r = 0; r < t.num_resources(); ++r) {
      EXPECT_DOUBLE_EQ(f1(i, r), f9(i, r));
    }
  }
}

TEST(Pipeline, TemporalWindowFeaturesPadWarmupAndHaveWindowedDims) {
  // Fig. 5 path: clustering features concatenate the last `temporal_window`
  // stored snapshots. Early steps, where the history is shorter than the
  // window, must pad with the oldest available snapshot instead of reading
  // uninitialized slots.
  const trace::InMemoryTrace t = small_trace(12, 40);
  PipelineOptions o = fast_options();
  o.temporal_window = 4;
  o.policy = collect::PolicyKind::kAlways;  // store complete from step 0
  MonitoringPipeline p(t, o);

  p.step();
  // One snapshot in history: N x (view_dims * window) with every slot a
  // copy of the only snapshot.
  Matrix f = p.view_features(0);
  ASSERT_EQ(f.rows(), t.num_nodes());
  ASSERT_EQ(f.cols(), 4u);  // per-resource views: view_dims = 1
  for (std::size_t i = 0; i < f.rows(); ++i) {
    for (std::size_t slot = 0; slot < 4; ++slot) {
      EXPECT_TRUE(std::isfinite(f(i, slot)));
      EXPECT_DOUBLE_EQ(f(i, slot), f(i, 0)) << "warm-up padding";
    }
    EXPECT_DOUBLE_EQ(f(i, 0), t.value(i, 0, 0));
  }

  p.step();
  // Two snapshots: slot 0 = newest, slot 1 = previous, slots 2..3 padded
  // with the oldest (= slot 1's snapshot).
  f = p.view_features(0);
  ASSERT_EQ(f.cols(), 4u);
  for (std::size_t i = 0; i < f.rows(); ++i) {
    EXPECT_DOUBLE_EQ(f(i, 0), t.value(i, 1, 0));
    EXPECT_DOUBLE_EQ(f(i, 1), t.value(i, 0, 0));
    EXPECT_DOUBLE_EQ(f(i, 2), f(i, 1));
    EXPECT_DOUBLE_EQ(f(i, 3), f(i, 1));
  }

  // Past warm-up the window is fully populated with distinct snapshots.
  p.run(10);
  f = p.view_features(0);
  const std::size_t last = p.current_step() - 1;
  for (std::size_t i = 0; i < f.rows(); ++i) {
    for (std::size_t slot = 0; slot < 4; ++slot) {
      EXPECT_DOUBLE_EQ(f(i, slot), t.value(i, last - slot, 0));
    }
  }

  // Joint clustering: features are (num_resources * window) wide.
  PipelineOptions joint = o;
  joint.cluster_per_resource = false;
  MonitoringPipeline pj(t, joint);
  pj.run(3);
  EXPECT_EQ(pj.view_features(0).cols(), t.num_resources() * 4);
}

TEST(Pipeline, TemporalWindowRunsAndClusters) {
  const trace::InMemoryTrace t = small_trace(12, 50);
  PipelineOptions o = fast_options();
  o.temporal_window = 5;
  MonitoringPipeline p(t, o);
  p.run(50);
  EXPECT_EQ(p.tracker(0).steps(), 50u);
  EXPECT_TRUE(std::isfinite(p.intermediate_rmse()));
}

TEST(Pipeline, IntermediateRmseSmallWhenClustersMatchGroups) {
  // A trace with 3 crisp groups and K=3 must yield a small intermediate
  // RMSE when everything is transmitted.
  trace::InMemoryTrace t(9, 40, 1);
  for (std::size_t step = 0; step < 40; ++step) {
    for (std::size_t i = 0; i < 3; ++i) t.set_value(i, step, 0, 0.1);
    for (std::size_t i = 3; i < 6; ++i) t.set_value(i, step, 0, 0.5);
    for (std::size_t i = 6; i < 9; ++i) t.set_value(i, step, 0, 0.9);
  }
  PipelineOptions o = fast_options();
  o.policy = collect::PolicyKind::kAlways;
  MonitoringPipeline p(t, o);
  p.run(40);
  EXPECT_NEAR(p.intermediate_rmse(), 0.0, 1e-9);
}

TEST(Pipeline, OffsetImprovesOverBareCentroid) {
  // Nodes have persistent offsets from their group mean; eq. (12) should
  // pull per-node forecasts toward the true values compared to centroid-only.
  trace::InMemoryTrace t(6, 60, 1);
  const double offsets[6] = {-0.05, 0.0, 0.05, -0.05, 0.0, 0.05};
  for (std::size_t step = 0; step < 60; ++step) {
    for (std::size_t i = 0; i < 3; ++i) {
      t.set_value(i, step, 0, 0.3 + offsets[i]);
    }
    for (std::size_t i = 3; i < 6; ++i) {
      t.set_value(i, step, 0, 0.7 + offsets[i]);
    }
  }
  PipelineOptions o = fast_options();
  o.policy = collect::PolicyKind::kAlways;
  o.num_clusters = 2;
  o.schedule = {.initial_steps = 10, .retrain_interval = 100};
  MonitoringPipeline p(t, o);
  p.run(59);
  // Forecast h=1: with constant signals the centroid forecast is exact for
  // the group mean; adding the offset should land on each node's value.
  const Matrix f = p.forecast_all(1);
  for (std::size_t i = 0; i < 6; ++i) {
    const double truth = t.value(i, 59, 0);
    EXPECT_NEAR(f(i, 0), truth, 0.02) << "node " << i;
  }
}

TEST(Pipeline, DeterministicGivenSeed) {
  const trace::InMemoryTrace t = small_trace(10, 60);
  PipelineOptions o = fast_options();
  o.seed = 7;
  MonitoringPipeline a(t, o);
  MonitoringPipeline b(t, o);
  a.run(60);
  b.run(60);
  const Matrix fa = a.forecast_all(3);
  const Matrix fb = b.forecast_all(3);
  for (std::size_t i = 0; i < t.num_nodes(); ++i) {
    for (std::size_t r = 0; r < t.num_resources(); ++r) {
      EXPECT_DOUBLE_EQ(fa(i, r), fb(i, r));
    }
  }
}

TEST(Pipeline, DeadbandPolicyRunsEndToEnd) {
  const trace::InMemoryTrace t = small_trace(12, 150);
  PipelineOptions o = fast_options();
  o.policy = collect::PolicyKind::kDeadband;
  MonitoringPipeline p(t, o);
  p.run(150);
  EXPECT_TRUE(p.done());
  EXPECT_GT(p.collector().average_actual_frequency(), 0.0);
  EXPECT_TRUE(std::isfinite(p.rmse_at(0)));
}

TEST(Pipeline, DisablingOffsetChangesForecasts) {
  const trace::InMemoryTrace t = small_trace(15, 120);
  PipelineOptions with = fast_options();
  PipelineOptions without = fast_options();
  without.use_offset = false;
  MonitoringPipeline a(t, with);
  MonitoringPipeline b(t, without);
  a.run(120);
  b.run(120);
  const Matrix fa = a.forecast_all(3);
  const Matrix fb = b.forecast_all(3);
  bool any_diff = false;
  for (std::size_t i = 0; i < t.num_nodes() && !any_diff; ++i) {
    any_diff = fa(i, 0) != fb(i, 0);
  }
  EXPECT_TRUE(any_diff);
  // Without the offset, all members of one cluster share one forecast:
  // there can be at most K distinct values per resource.
  std::set<double> distinct;
  for (std::size_t i = 0; i < t.num_nodes(); ++i) distinct.insert(fb(i, 0));
  EXPECT_LE(distinct.size(), without.num_clusters);
}

TEST(Pipeline, ReindexingOffStillRuns) {
  const trace::InMemoryTrace t = small_trace(12, 80);
  PipelineOptions o = fast_options();
  o.reindex_clusters = false;
  MonitoringPipeline p(t, o);
  p.run(80);
  EXPECT_TRUE(std::isfinite(p.intermediate_rmse()));
}

TEST(Pipeline, HoltWintersForecasterIntegrates) {
  const trace::InMemoryTrace t = small_trace(10, 150);
  PipelineOptions o = fast_options();
  o.forecaster = forecast::ForecasterKind::kHoltWinters;
  MonitoringPipeline p(t, o);
  p.run(150);
  EXPECT_GT(p.model(0, 0).fits_completed(), 0u);
  EXPECT_TRUE(std::isfinite(p.rmse_at(0)));
}

TEST(Pipeline, LowerBGivesNoLowerAccuracyThanTinyB) {
  // More bandwidth should not hurt: B=0.5 h=0 error <= B=0.05 h=0 error
  // (time-averaged).
  const trace::InMemoryTrace t = small_trace(15, 200, 3);
  auto run_with_b = [&](double b) {
    PipelineOptions o = fast_options();
    o.max_frequency = b;
    MonitoringPipeline p(t, o);
    RmseAccumulator acc;
    for (std::size_t step = 0; step < 200; ++step) {
      p.step();
      acc.add(p.rmse_at(0));
    }
    return acc.value();
  };
  EXPECT_LE(run_with_b(0.5), run_with_b(0.05) + 1e-6);
}

TEST(Pipeline, StageTimersResetAtEveryRun) {
  // Regression: stage timers used to accumulate across run() calls on one
  // pipeline object, silently doubling the reported per-run breakdown.
  const trace::InMemoryTrace t = small_trace(10, 60);
  MonitoringPipeline p(t, fast_options());
  p.run(30);
  EXPECT_GT(p.stage_timers().total_seconds(), 0.0);

  // run(0) processes nothing, so after the reset every stage must read
  // exactly zero — a cumulative implementation would still show run #1.
  p.run(0);
  EXPECT_EQ(p.stage_timers().collect_seconds, 0.0);
  EXPECT_EQ(p.stage_timers().cluster_seconds, 0.0);
  EXPECT_EQ(p.stage_timers().forecast_seconds, 0.0);

  // And a fresh run records only itself.
  p.run(30);
  EXPECT_GT(p.stage_timers().total_seconds(), 0.0);
}

TEST(Pipeline, MetricsExposeStepAndStageSeries) {
  const trace::InMemoryTrace t = small_trace(10, 40);
  obs::MetricsRegistry registry;
  PipelineOptions o = fast_options();
  o.metrics = &registry;
  MonitoringPipeline p(t, o);
  p.run(40);
  EXPECT_EQ(&p.metrics(), &registry);
  EXPECT_EQ(registry.value("resmon_pipeline_steps_total"), 40.0);
  EXPECT_EQ(registry.value("resmon_pipeline_warmup_slots_total"), 0.0);
  EXPECT_EQ(registry.value("resmon_pipeline_stage_seconds",
                           {{"stage", "cluster"}}),
            p.stage_timers().cluster_seconds);
  // Component series flow into the same registry.
  EXPECT_GT(registry.value("resmon_collect_decisions_total"), 0.0);
  EXPECT_GT(registry.value("resmon_cluster_updates_total", {{"view", "0"}}),
            0.0);
}

TEST(Pipeline, TraceEventsRecordOneSpanPerStage) {
  const trace::InMemoryTrace t = small_trace(10, 20);
  obs::TraceBuffer buffer(256);
  PipelineOptions o = fast_options();
  o.trace_events = &buffer;
  MonitoringPipeline p(t, o);
  p.run(20);
  std::size_t collect = 0, cluster = 0, forecast = 0;
  for (const obs::TraceEvent& e : buffer.snapshot()) {
    if (e.name == "pipeline.collect") ++collect;
    if (e.name == "pipeline.cluster") ++cluster;
    if (e.name == "pipeline.forecast") ++forecast;
  }
  EXPECT_EQ(collect, 20u);
  EXPECT_EQ(cluster, 20u);
  EXPECT_EQ(forecast, 20u);
}

}  // namespace
}  // namespace resmon::core
