#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/cli.hpp"
#include "common/error.hpp"
#include "common/table.hpp"

namespace resmon {
namespace {

// ---- Table -----------------------------------------------------------

TEST(Table, RequiresAtLeastOneColumn) {
  EXPECT_THROW(Table({}), InvalidArgument);
}

TEST(Table, RowWidthMustMatchHeaders) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({std::string("x")}), InvalidArgument);
}

TEST(Table, CountsRowsAndCols) {
  Table t({"a", "b"});
  t.add_row({1.0, 2.0});
  t.add_row({std::string("x"), 3.0});
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.num_cols(), 2u);
}

TEST(Table, CsvOutputIsWellFormed) {
  Table t({"name", "value"}, 2);
  t.add_row({std::string("alpha"), 1.5});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "name,value\nalpha,1.50\n");
}

TEST(Table, TextOutputContainsHeadersAndValues) {
  Table t({"metric", "x"}, 3);
  t.add_row({std::string("rmse"), 0.125});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("metric"), std::string::npos);
  EXPECT_NE(out.find("0.125"), std::string::npos);
}

TEST(Table, PrecisionControlsFormatting) {
  Table t({"v"}, 1);
  t.add_row({0.16});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "v\n0.2\n");
}

// ---- Args ------------------------------------------------------------

Args make_args(std::vector<std::string> tokens) {
  std::vector<const char*> argv;
  argv.push_back("prog");
  for (const auto& t : tokens) argv.push_back(t.c_str());
  return Args(static_cast<int>(argv.size()), argv.data());
}

TEST(Args, ParsesSpaceSeparatedValue) {
  const Args a = make_args({"--nodes", "50"});
  EXPECT_EQ(a.get_int("nodes", 0), 50);
}

TEST(Args, ParsesEqualsForm) {
  const Args a = make_args({"--b=0.3"});
  EXPECT_DOUBLE_EQ(a.get_double("b", 0.0), 0.3);
}

TEST(Args, BareFlagReadsAsTrue) {
  const Args a = make_args({"--full"});
  EXPECT_TRUE(a.get_bool("full"));
  EXPECT_TRUE(a.has("full"));
}

TEST(Args, MissingFlagFallsBack) {
  const Args a = make_args({});
  EXPECT_EQ(a.get("dataset", "alibaba"), "alibaba");
  EXPECT_EQ(a.get_int("steps", 42), 42);
  EXPECT_FALSE(a.get_bool("full"));
}

TEST(Args, FlagFollowedByFlagIsBoolean) {
  const Args a = make_args({"--verbose", "--nodes", "10"});
  EXPECT_TRUE(a.get_bool("verbose"));
  EXPECT_EQ(a.get_int("nodes", 0), 10);
}

TEST(Args, PositionalArgumentThrows) {
  EXPECT_THROW(make_args({"oops"}), InvalidArgument);
}

TEST(Args, NonNumericIntThrows) {
  const Args a = make_args({"--n", "abc"});
  EXPECT_THROW(a.get_int("n", 0), InvalidArgument);
}

TEST(Args, NonNumericDoubleThrows) {
  const Args a = make_args({"--x", "abc"});
  EXPECT_THROW(a.get_double("x", 0.0), InvalidArgument);
}

}  // namespace
}  // namespace resmon
