#include "common/thread_pool.hpp"

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

namespace resmon {
namespace {

TEST(ThreadPool, ConstructsAndTearsDownAtVariousSizes) {
  for (const std::size_t size : {1u, 2u, 4u, 8u}) {
    ThreadPool pool(size);
    EXPECT_EQ(pool.size(), size);
  }
  // 0 = hardware concurrency, at least one worker.
  ThreadPool automatic(0);
  EXPECT_GE(automatic.size(), 1u);
}

TEST(ThreadPool, TeardownWithIdleWorkersDoesNotHang) {
  // Construct and immediately destroy, repeatedly: workers blocked on the
  // condition variable must all wake and join.
  for (int i = 0; i < 20; ++i) {
    ThreadPool pool(3);
  }
}

TEST(ThreadPool, SubmitReturnsResultThroughFuture) {
  ThreadPool pool(2);
  std::future<int> f = pool.submit([]() { return 6 * 7; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, SubmitPropagatesExceptions) {
  ThreadPool pool(2);
  std::future<void> f = pool.submit(
      []() { throw std::runtime_error("task failed"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, PendingSubmitsStillRunDuringTeardown) {
  // Tasks queued before destruction must complete (the destructor drains
  // the queue), so their futures never go abandoned.
  std::vector<std::future<int>> futures;
  {
    ThreadPool pool(1);
    for (int i = 0; i < 50; ++i) {
      futures.push_back(pool.submit([i]() { return i; }));
    }
  }
  for (int i = 0; i < 50; ++i) EXPECT_EQ(futures[i].get(), i);
}

TEST(ThreadPool, ParallelForCoversAllIndicesExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> visits(kN);
  pool.parallel_for(kN, 7,
                    [&](std::size_t, std::size_t begin, std::size_t end) {
                      for (std::size_t i = begin; i < end; ++i) {
                        visits[i].fetch_add(1);
                      }
                    });
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(visits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ParallelForChunkPartitionIsFixed) {
  // The partition depends only on (n, grain): chunk c covers
  // [c * grain, min(n, (c+1) * grain)), regardless of worker count.
  for (const std::size_t workers : {1u, 3u, 8u}) {
    ThreadPool pool(workers);
    const std::size_t n = 103;
    const std::size_t grain = 10;
    const std::size_t chunks = ThreadPool::num_chunks(n, grain);
    ASSERT_EQ(chunks, 11u);
    std::vector<std::pair<std::size_t, std::size_t>> ranges(chunks);
    pool.parallel_for(n, grain,
                      [&](std::size_t c, std::size_t begin, std::size_t end) {
                        ranges[c] = {begin, end};
                      });
    for (std::size_t c = 0; c < chunks; ++c) {
      EXPECT_EQ(ranges[c].first, c * grain);
      EXPECT_EQ(ranges[c].second, std::min(n, (c + 1) * grain));
    }
  }
}

TEST(ThreadPool, ParallelForPropagatesBodyException) {
  ThreadPool pool(3);
  std::atomic<int> completed{0};
  EXPECT_THROW(
      pool.parallel_for(100, 5,
                        [&](std::size_t c, std::size_t, std::size_t) {
                          if (c == 7) throw std::runtime_error("chunk 7");
                          completed.fetch_add(1);
                        }),
      std::runtime_error);
  // The loop still ran to completion (all other chunks executed) before
  // rethrowing, so the pool is reusable afterwards.
  EXPECT_EQ(completed.load(), 19);
  std::atomic<int> after{0};
  pool.parallel_for(10, 1, [&](std::size_t, std::size_t, std::size_t) {
    after.fetch_add(1);
  });
  EXPECT_EQ(after.load(), 10);
}

TEST(ThreadPool, NestedParallelForIsDeadlockFreeAndCoversAllIndices) {
  // Outer tasks occupy workers and issue inner parallel_for calls; the
  // caller of each inner loop participates in its own chunks, so the
  // nesting cannot deadlock even on a pool with a single worker.
  for (const std::size_t workers : {1u, 4u}) {
    ThreadPool pool(workers);
    constexpr std::size_t kOuter = 6;
    constexpr std::size_t kInner = 200;
    std::vector<std::atomic<int>> visits(kOuter * kInner);
    pool.parallel_for(
        kOuter, 1, [&](std::size_t, std::size_t begin, std::size_t end) {
          for (std::size_t o = begin; o < end; ++o) {
            pool.parallel_for(
                kInner, 16,
                [&, o](std::size_t, std::size_t ib, std::size_t ie) {
                  for (std::size_t i = ib; i < ie; ++i) {
                    visits[o * kInner + i].fetch_add(1);
                  }
                });
          }
        });
    for (std::size_t i = 0; i < visits.size(); ++i) {
      ASSERT_EQ(visits[i].load(), 1) << "workers " << workers << " slot " << i;
    }
  }
}

TEST(ThreadPool, NestedSubmitCompletes) {
  ThreadPool pool(2);
  // A task that enqueues another task and returns (without blocking on it)
  // is safe at any pool size.
  std::future<std::future<int>> outer = pool.submit([&pool]() {
    return pool.submit([]() { return 99; });
  });
  EXPECT_EQ(outer.get().get(), 99);
}

TEST(RunChunked, NullPoolRunsInlineInChunkOrder) {
  std::vector<std::size_t> order;
  run_chunked(nullptr, 25, 10,
              [&](std::size_t c, std::size_t begin, std::size_t end) {
                order.push_back(c);
                EXPECT_EQ(begin, c * 10);
                EXPECT_EQ(end, std::min<std::size_t>(25, (c + 1) * 10));
              });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2}));
}

TEST(RunChunked, PerChunkReductionIsIdenticalSerialAndPooled) {
  // The determinism contract: per-chunk partials merged in chunk order give
  // bit-identical sums with and without a pool.
  constexpr std::size_t kN = 10000;
  std::vector<double> values(kN);
  for (std::size_t i = 0; i < kN; ++i) {
    values[i] = 1.0 / static_cast<double>(i + 3);
  }
  auto chunked_sum = [&](ThreadPool* pool) {
    const std::size_t chunks = ThreadPool::num_chunks(kN, 64);
    std::vector<double> partial(chunks, 0.0);
    run_chunked(pool, kN, 64,
                [&](std::size_t c, std::size_t begin, std::size_t end) {
                  double local = 0.0;
                  for (std::size_t i = begin; i < end; ++i) local += values[i];
                  partial[c] = local;
                });
    double total = 0.0;
    for (std::size_t c = 0; c < chunks; ++c) total += partial[c];
    return total;
  };
  const double serial = chunked_sum(nullptr);
  ThreadPool two(2);
  ThreadPool eight(8);
  EXPECT_EQ(serial, chunked_sum(&two));
  EXPECT_EQ(serial, chunked_sum(&eight));
}

TEST(ThreadPool, NumChunksHandlesEdgeCases) {
  EXPECT_EQ(ThreadPool::num_chunks(0, 10), 0u);
  EXPECT_EQ(ThreadPool::num_chunks(1, 10), 1u);
  EXPECT_EQ(ThreadPool::num_chunks(10, 10), 1u);
  EXPECT_EQ(ThreadPool::num_chunks(11, 10), 2u);
  EXPECT_EQ(ThreadPool::num_chunks(5, 0), 5u);  // grain 0 treated as 1
}

TEST(ThreadPool, ParallelForWithZeroTripCountIsNoOp) {
  ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for(0, 4, [&](std::size_t, std::size_t, std::size_t) {
    ran = true;
  });
  EXPECT_FALSE(ran);
}

}  // namespace
}  // namespace resmon
