#include "core/metrics.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace resmon::core {
namespace {

TEST(RmseStep, ZeroForIdenticalMatrices) {
  Matrix a{{0.1, 0.2}, {0.3, 0.4}};
  EXPECT_DOUBLE_EQ(rmse_step(a, a), 0.0);
}

TEST(RmseStep, MatchesHandComputedValue) {
  // Two nodes, one resource: errors 0.3 and 0.4.
  Matrix truth{{0.0}, {0.0}};
  Matrix est{{0.3}, {0.4}};
  // sqrt((0.09 + 0.16) / 2) = sqrt(0.125)
  EXPECT_NEAR(rmse_step(truth, est), std::sqrt(0.125), 1e-12);
}

TEST(RmseStep, NormRunsOverResourceDimensions) {
  // One node, two resources: ||e||^2 = 0.09 + 0.16 = 0.25.
  Matrix truth{{0.0, 0.0}};
  Matrix est{{0.3, 0.4}};
  EXPECT_NEAR(rmse_step(truth, est), 0.5, 1e-12);
}

TEST(RmseStep, ShapeMismatchThrows) {
  EXPECT_THROW(rmse_step(Matrix(2, 1), Matrix(3, 1)), InvalidArgument);
  EXPECT_THROW(rmse_step(Matrix(2, 1), Matrix(2, 2)), InvalidArgument);
  EXPECT_THROW(rmse_step(Matrix(), Matrix()), InvalidArgument);
}

TEST(RmseAccumulator, EmptyIsZero) {
  RmseAccumulator acc;
  EXPECT_DOUBLE_EQ(acc.value(), 0.0);
  EXPECT_EQ(acc.count(), 0u);
}

TEST(RmseAccumulator, AveragesSquaresNotValues) {
  // Eq. (4): sqrt(mean of squared per-step RMSEs).
  RmseAccumulator acc;
  acc.add(3.0);
  acc.add(4.0);
  EXPECT_NEAR(acc.value(), std::sqrt((9.0 + 16.0) / 2.0), 1e-12);
  EXPECT_EQ(acc.count(), 2u);
}

TEST(RmseAccumulator, SingleValuePassesThrough) {
  RmseAccumulator acc;
  acc.add(0.125);
  EXPECT_DOUBLE_EQ(acc.value(), 0.125);
}

TEST(IntermediateRmse, ZeroWhenDataEqualsCentroids) {
  cluster::Clustering c;
  c.assignment = {0, 1};
  c.centroids = Matrix{{0.2}, {0.8}};
  Matrix truth{{0.2}, {0.8}};
  EXPECT_DOUBLE_EQ(intermediate_rmse_step(truth, c), 0.0);
}

TEST(IntermediateRmse, MeasuresDistanceToAssignedCentroid) {
  cluster::Clustering c;
  c.assignment = {0, 0};
  c.centroids = Matrix{{0.5}, {0.0}};
  Matrix truth{{0.4}, {0.6}};
  // errors: 0.1 and 0.1 -> rmse = 0.1
  EXPECT_NEAR(intermediate_rmse_step(truth, c), 0.1, 1e-12);
}

TEST(IntermediateRmse, ValidatesShapes) {
  cluster::Clustering c;
  c.assignment = {0};
  c.centroids = Matrix{{0.5, 0.5}};
  EXPECT_THROW(intermediate_rmse_step(Matrix(2, 2), c), InvalidArgument);
  EXPECT_THROW(intermediate_rmse_step(Matrix(1, 1), c), InvalidArgument);
}

TEST(MaeStep, KnownValue) {
  Matrix truth{{0.0, 0.0}, {1.0, 1.0}};
  Matrix est{{0.1, 0.3}, {1.0, 0.6}};
  // |errors| = 0.1, 0.3, 0, 0.4 -> mean 0.2
  EXPECT_NEAR(mae_step(truth, est), 0.2, 1e-12);
}

TEST(MaeStep, LessSpikeSensitiveThanRmse) {
  Matrix truth(10, 1);
  Matrix est(10, 1);
  est(0, 0) = 1.0;  // one large error among nine zeros
  const double mae = mae_step(truth, est);
  const double rmse = rmse_step(truth, est);
  EXPECT_LT(mae, rmse);
}

TEST(MaeStep, Validates) {
  EXPECT_THROW(mae_step(Matrix(1, 1), Matrix(2, 1)), InvalidArgument);
  EXPECT_THROW(mae_step(Matrix(), Matrix()), InvalidArgument);
}

TEST(PerNodeError, IdentifiesWorstTrackedNode) {
  Matrix truth{{0.0, 0.0}, {0.0, 0.0}, {0.0, 0.0}};
  Matrix est{{0.01, 0.0}, {0.3, 0.4}, {0.05, 0.0}};
  const std::vector<double> err = per_node_error(truth, est);
  ASSERT_EQ(err.size(), 3u);
  EXPECT_NEAR(err[1], 0.5, 1e-12);  // 3-4-5 triangle
  EXPECT_GT(err[1], err[0]);
  EXPECT_GT(err[1], err[2]);
}

TEST(PerNodeError, Validates) {
  EXPECT_THROW(per_node_error(Matrix(2, 1), Matrix(1, 1)),
               InvalidArgument);
}

}  // namespace
}  // namespace resmon::core
