// resmon::faultnet tests: the fault-spec grammar, the deterministic
// injection engine, and the FaultyLink wrapper's per-fault behavior.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>

#include "common/error.hpp"
#include "faultnet/agent_hook.hpp"
#include "faultnet/fault_spec.hpp"
#include "faultnet/faulty_link.hpp"
#include "faultnet/injector.hpp"
#include "net/loopback.hpp"
#include "net/wire.hpp"
#include "obs/metrics.hpp"
#include "transport/channel.hpp"

namespace resmon::faultnet {
namespace {

transport::MeasurementMessage msg(std::size_t node, std::size_t step,
                                  double value = 0.5) {
  return {.node = node, .step = step, .values = {value}};
}

std::unique_ptr<transport::Link> loopback() {
  return std::make_unique<net::LoopbackLink>();
}

// ---- FaultSpec grammar -----------------------------------------------------

TEST(FaultSpec, ParsesEveryClause) {
  const FaultSpec spec = FaultSpec::parse(
      "drop=0.1;dup=0.2;corrupt=0.05;reorder=0.3;delay=0.25:4;"
      "stall=10-20;partition=30-40;nodes=1,3;seed=42");
  EXPECT_DOUBLE_EQ(spec.drop, 0.1);
  EXPECT_DOUBLE_EQ(spec.duplicate, 0.2);
  EXPECT_DOUBLE_EQ(spec.corrupt, 0.05);
  EXPECT_DOUBLE_EQ(spec.reorder, 0.3);
  EXPECT_DOUBLE_EQ(spec.delay, 0.25);
  EXPECT_EQ(spec.max_delay_slots, 4u);
  ASSERT_EQ(spec.stalls.size(), 1u);
  EXPECT_EQ(spec.stalls[0], (SlotWindow{10, 20}));
  ASSERT_EQ(spec.partitions.size(), 1u);
  EXPECT_EQ(spec.partitions[0], (SlotWindow{30, 40}));
  EXPECT_EQ(spec.nodes, (std::vector<std::size_t>{1, 3}));
  EXPECT_EQ(spec.seed, 42u);
}

TEST(FaultSpec, EmptyStringIsTheEmptySpec) {
  EXPECT_TRUE(FaultSpec::parse("").empty());
  EXPECT_EQ(FaultSpec::parse(""), FaultSpec{});
}

TEST(FaultSpec, RoundTripsThroughToString) {
  const std::string text =
      "drop=0.1;dup=0.2;corrupt=0.05;reorder=0.3;delay=0.25:4;"
      "stall=10-20;stall=50-60;partition=30-40;nodes=1,3;seed=42";
  const FaultSpec spec = FaultSpec::parse(text);
  EXPECT_EQ(FaultSpec::parse(spec.to_string()), spec);
}

TEST(FaultSpec, RejectsMalformedClauses) {
  EXPECT_THROW(FaultSpec::parse("drop=1.5"), InvalidArgument);
  EXPECT_THROW(FaultSpec::parse("drop=-0.1"), InvalidArgument);
  EXPECT_THROW(FaultSpec::parse("drop=abc"), InvalidArgument);
  EXPECT_THROW(FaultSpec::parse("drop=0.1x"), InvalidArgument);
  EXPECT_THROW(FaultSpec::parse("bogus=1"), InvalidArgument);
  EXPECT_THROW(FaultSpec::parse("=1"), InvalidArgument);
  EXPECT_THROW(FaultSpec::parse("stall=20-10"), InvalidArgument);
  EXPECT_THROW(FaultSpec::parse("stall=10"), InvalidArgument);
  EXPECT_THROW(FaultSpec::parse("delay=0.5"), InvalidArgument);
  EXPECT_THROW(FaultSpec::parse("delay=0.5:0"), InvalidArgument);
  EXPECT_THROW(FaultSpec::parse("nodes="), InvalidArgument);
}

TEST(FaultSpec, NodeFilterDefaultsToEveryNode) {
  EXPECT_TRUE(FaultSpec::parse("drop=0.5").applies_to(17));
  const FaultSpec spec = FaultSpec::parse("drop=0.5;nodes=1,3");
  EXPECT_TRUE(spec.applies_to(1));
  EXPECT_FALSE(spec.applies_to(2));
}

TEST(FaultSpec, WindowsAreInclusive) {
  const FaultSpec spec = FaultSpec::parse("stall=10-20;partition=30-30");
  EXPECT_FALSE(spec.stalled_at(9));
  EXPECT_TRUE(spec.stalled_at(10));
  EXPECT_TRUE(spec.stalled_at(20));
  EXPECT_FALSE(spec.stalled_at(21));
  EXPECT_TRUE(spec.partitioned_at(30));
  EXPECT_FALSE(spec.partitioned_at(31));
}

// ---- FaultInjector ---------------------------------------------------------

TEST(FaultInjector, DecisionsArePureFunctionsOfTheSpec) {
  const FaultSpec spec =
      FaultSpec::parse("drop=0.3;dup=0.2;corrupt=0.1;delay=0.2:3;seed=9");
  const FaultInjector a(spec);
  const FaultInjector b(spec);  // independent instance, same spec
  for (std::size_t node = 0; node < 8; ++node) {
    for (std::size_t step = 0; step < 200; ++step) {
      const FaultDecision da = a.decide(node, step);
      const FaultDecision db = b.decide(node, step);
      EXPECT_EQ(da.drop, db.drop);
      EXPECT_EQ(da.duplicate, db.duplicate);
      EXPECT_EQ(da.corrupt, db.corrupt);
      EXPECT_EQ(da.delay_slots, db.delay_slots);
    }
  }
}

TEST(FaultInjector, DifferentSeedsGiveDifferentRealizations) {
  const FaultInjector a(FaultSpec::parse("drop=0.5;seed=1"));
  const FaultInjector b(FaultSpec::parse("drop=0.5;seed=2"));
  std::size_t differing = 0;
  for (std::size_t step = 0; step < 500; ++step) {
    if (a.decide(0, step).drop != b.decide(0, step).drop) ++differing;
  }
  EXPECT_GT(differing, 100u);
}

TEST(FaultInjector, RatesMatchTheSpecApproximately) {
  const FaultInjector injector(FaultSpec::parse("drop=0.25;seed=5"));
  std::size_t drops = 0;
  for (std::size_t step = 0; step < 10000; ++step) {
    if (injector.decide(3, step).drop) ++drops;
  }
  EXPECT_NEAR(static_cast<double>(drops) / 10000.0, 0.25, 0.02);
}

TEST(FaultInjector, FaultsAreMutuallyExclusivePerFrame) {
  const FaultInjector injector(
      FaultSpec::parse("drop=0.5;dup=0.5;corrupt=0.5;delay=0.5:2"));
  for (std::size_t step = 0; step < 500; ++step) {
    const FaultDecision d = injector.decide(0, step);
    const int fired = (d.drop ? 1 : 0) + (d.duplicate ? 1 : 0) +
                      (d.corrupt ? 1 : 0) + (d.delay_slots > 0 ? 1 : 0);
    EXPECT_LE(fired, 1) << "step " << step;
  }
}

TEST(FaultInjector, WindowsOverrideProbabilisticFaults) {
  const FaultInjector injector(
      FaultSpec::parse("drop=1.0;stall=5-6;partition=7-8"));
  EXPECT_TRUE(injector.decide(0, 4).drop);
  EXPECT_TRUE(injector.decide(0, 5).stalled);
  EXPECT_FALSE(injector.decide(0, 5).drop);
  EXPECT_TRUE(injector.decide(0, 7).partitioned);
}

TEST(FaultInjector, PickIsDeterministicAndInRange) {
  const FaultInjector injector(FaultSpec::parse("seed=3"));
  for (std::size_t step = 0; step < 100; ++step) {
    const std::size_t v = injector.pick(1, step, 0x42, 7);
    EXPECT_LT(v, 7u);
    EXPECT_EQ(v, injector.pick(1, step, 0x42, 7));
  }
}

TEST(FaultInjector, RegistersEveryFaultKindEagerly) {
  obs::MetricsRegistry registry;
  const FaultInjector injector(FaultSpec{}, &registry);
  const std::string text = registry.render_text();
  for (const char* kind : {"drop", "duplicate", "corrupt", "delay",
                           "reorder", "stall", "partition"}) {
    EXPECT_NE(text.find("fault=\"" + std::string(kind) + "\""),
              std::string::npos)
        << kind;
  }
}

// ---- FaultyLink ------------------------------------------------------------

TEST(FaultyLink, EmptySpecIsATransparentWrapper) {
  FaultyLink link(FaultSpec{}, loopback());
  for (std::size_t t = 0; t < 50; ++t) {
    link.send(msg(0, t, 0.25 + static_cast<double>(t)));
    const auto batch = link.drain();
    ASSERT_EQ(batch.size(), 1u);
    EXPECT_EQ(batch[0].step, t);
    EXPECT_DOUBLE_EQ(batch[0].values[0], 0.25 + static_cast<double>(t));
  }
  EXPECT_EQ(link.messages_dropped(), 0u);
  EXPECT_EQ(link.messages_sent(), 50u);
}

TEST(FaultyLink, DropsApproximatelyTheConfiguredFraction) {
  FaultyLink link(FaultSpec::parse("drop=0.3;seed=11"), loopback());
  std::size_t delivered = 0;
  for (std::size_t t = 0; t < 5000; ++t) {
    link.send(msg(0, t));
    delivered += link.drain().size();
  }
  const double rate = 1.0 - static_cast<double>(delivered) / 5000.0;
  EXPECT_NEAR(rate, 0.3, 0.03);
  EXPECT_EQ(link.messages_dropped(), 5000u - delivered);
  EXPECT_EQ(link.messages_sent(), 5000u);  // senders pay for drops
  EXPECT_GT(link.bytes_sent(), 0u);
}

TEST(FaultyLink, DuplicatesAreDeliveredTwiceAndDedupedByTheStore) {
  FaultyLink link(FaultSpec::parse("dup=1.0"), loopback());
  transport::CentralStore store(1, 1);
  link.send(msg(0, 7, 0.9));
  const auto batch = link.drain();
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0].step, 7u);
  EXPECT_EQ(batch[1].step, 7u);
  for (const auto& m : batch) store.apply(m);
  EXPECT_DOUBLE_EQ(store.stored(0)[0], 0.9);
  EXPECT_EQ(store.last_update_step(0), 7u);
}

TEST(FaultyLink, CorruptFramesAreCrcRejectedAndLost) {
  obs::MetricsRegistry registry;
  FaultyLink link(FaultSpec::parse("corrupt=1.0"),
                  loopback(), &registry);
  for (std::size_t t = 0; t < 20; ++t) {
    link.send(msg(0, t));
    EXPECT_TRUE(link.drain().empty());
  }
  EXPECT_EQ(link.crc_rejects(), 20u);
  EXPECT_EQ(link.messages_dropped(), 20u);
  const std::string text = registry.render_text();
  EXPECT_NE(text.find("resmon_faultnet_crc_rejects_total 20"),
            std::string::npos)
      << text;
}

TEST(FaultyLink, DelayedMessagesSurfaceWithinMaxSlots) {
  FaultyLink link(FaultSpec::parse("delay=1.0:3;seed=2"), loopback());
  constexpr std::size_t kSlots = 100;
  std::size_t delivered = 0;
  for (std::size_t t = 0; t < kSlots; ++t) {
    link.send(msg(0, t));
    delivered += link.drain().size();
  }
  // Flush the tail: drain a few extra slots.
  for (int extra = 0; extra < 3; ++extra) delivered += link.drain().size();
  EXPECT_EQ(delivered, kSlots);
  EXPECT_EQ(link.pending(), 0u);
  EXPECT_EQ(link.messages_dropped(), 0u);
}

TEST(FaultyLink, StalledTrafficFlushesAfterTheWindow) {
  FaultyLink link(FaultSpec::parse("stall=2-4"), loopback());
  std::vector<std::size_t> delivered_at(10, 0);
  std::size_t total = 0;
  for (std::size_t t = 0; t < 10; ++t) {
    link.send(msg(0, t));
    for (const auto& m : link.drain()) {
      delivered_at[m.step] = t;
      ++total;
    }
  }
  EXPECT_EQ(total, 10u);
  // In-window messages (2..4) are held until the first drain past the
  // window (slot 5); everything else is immediate.
  EXPECT_EQ(delivered_at[1], 1u);
  EXPECT_EQ(delivered_at[2], 5u);
  EXPECT_EQ(delivered_at[3], 5u);
  EXPECT_EQ(delivered_at[4], 5u);
  EXPECT_EQ(delivered_at[5], 5u);
}

TEST(FaultyLink, PartitionedTrafficIsLost) {
  FaultyLink link(FaultSpec::parse("partition=3-5"), loopback());
  std::size_t delivered = 0;
  for (std::size_t t = 0; t < 10; ++t) {
    link.send(msg(0, t));
    delivered += link.drain().size();
  }
  EXPECT_EQ(delivered, 7u);
  EXPECT_EQ(link.messages_dropped(), 3u);
}

TEST(FaultyLink, NodeFilterLeavesOtherNodesClean) {
  FaultyLink link(FaultSpec::parse("drop=1.0;nodes=1"), loopback());
  link.send(msg(0, 0));
  link.send(msg(1, 0));
  const auto batch = link.drain();
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].node, 0u);
}

TEST(FaultyLink, ReorderShufflesABatchDeterministically) {
  const FaultSpec spec = FaultSpec::parse("reorder=1.0;seed=4");
  std::vector<std::size_t> order_a;
  std::vector<std::size_t> order_b;
  for (auto* order : {&order_a, &order_b}) {
    FaultyLink link(spec, loopback());
    for (std::size_t node = 0; node < 8; ++node) link.send(msg(node, 0));
    for (const auto& m : link.drain()) order->push_back(m.node);
  }
  EXPECT_EQ(order_a, order_b);  // same spec => same shuffle
  EXPECT_EQ(order_a.size(), 8u);
  EXPECT_TRUE(std::is_permutation(order_a.begin(), order_a.end(),
                                  std::vector<std::size_t>{
                                      0, 1, 2, 3, 4, 5, 6, 7}.begin()));
  EXPECT_NE(order_a, (std::vector<std::size_t>{0, 1, 2, 3, 4, 5, 6, 7}));
}

// ---- agent/controller hook adapters ---------------------------------------

TEST(AgentHook, DropsAndSeversPerTheSpec) {
  const std::vector<std::uint8_t> frame =
      net::wire::encode(msg(2, 0));
  const auto drop_all =
      make_agent_fault_hook(FaultSpec::parse("drop=1.0"), 2);
  const net::FrameAction dropped = drop_all(0, frame);
  EXPECT_FALSE(dropped.sever);
  EXPECT_TRUE(dropped.frames.empty());

  const auto stall = make_agent_fault_hook(FaultSpec::parse("stall=0-3"), 2);
  EXPECT_TRUE(stall(1, frame).sever);
  const net::FrameAction after = stall(4, frame);
  EXPECT_FALSE(after.sever);
  ASSERT_EQ(after.frames.size(), 1u);
  EXPECT_EQ(after.frames[0], frame);
}

TEST(AgentHook, CorruptedFrameFailsItsCrcCheck) {
  const auto hook =
      make_agent_fault_hook(FaultSpec::parse("corrupt=1.0"), 0);
  const net::FrameAction action = hook(0, net::wire::encode(msg(0, 0)));
  ASSERT_EQ(action.frames.size(), 1u);
  net::wire::FrameDecoder decoder;
  decoder.feed(action.frames[0]);
  EXPECT_EQ(decoder.error(), net::wire::WireError::kCrcMismatch);
}

TEST(ControllerBlockHook, BlocksOnlyPartitionWindowNodes) {
  const auto hook = make_controller_block_hook(
      FaultSpec::parse("partition=10-20;nodes=3"));
  EXPECT_TRUE(hook(3, 15));
  EXPECT_FALSE(hook(3, 9));
  EXPECT_FALSE(hook(3, 21));
  EXPECT_FALSE(hook(2, 15));  // other nodes unaffected
}

}  // namespace
}  // namespace resmon::faultnet
