#include "forecast/holt_winters.hpp"

#include <cmath>
#include <numbers>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "forecast/forecaster.hpp"

namespace resmon::forecast {
namespace {

std::vector<double> linear_series(double intercept, double slope,
                                  std::size_t n, double noise,
                                  std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> x(n);
  for (std::size_t t = 0; t < n; ++t) {
    x[t] = intercept + slope * static_cast<double>(t) +
           rng.normal(0.0, noise);
  }
  return x;
}

TEST(HoltWinters, ValidatesOptions) {
  EXPECT_THROW(HoltWintersForecaster({.damping = 0.0}), InvalidArgument);
  EXPECT_THROW(HoltWintersForecaster({.damping = 1.5}), InvalidArgument);
  EXPECT_THROW(HoltWintersForecaster({.season = 1}), InvalidArgument);
  EXPECT_THROW(HoltWintersForecaster({.alpha = 1.5}), InvalidArgument);
}

TEST(HoltWinters, UsageBeforeFitThrows) {
  HoltWintersForecaster f;
  EXPECT_FALSE(f.is_fitted());
  EXPECT_THROW(f.forecast(1), InvalidState);
  EXPECT_THROW(f.update(0.1), InvalidState);
}

TEST(HoltWinters, TooShortSeriesThrows) {
  HoltWintersForecaster f;
  EXPECT_THROW(f.fit(std::vector<double>{0.1, 0.2}), InvalidArgument);
}

TEST(HoltWinters, ConstantSeriesForecastsConstant) {
  std::vector<double> x(100, 0.42);
  HoltWintersForecaster f;
  f.fit(x);
  EXPECT_NEAR(f.forecast(1), 0.42, 1e-6);
  EXPECT_NEAR(f.forecast(20), 0.42, 1e-6);
}

TEST(HoltWinters, TracksLinearTrend) {
  const std::vector<double> x = linear_series(0.1, 0.002, 400, 0.005, 1);
  HoltWintersForecaster f({.damping = 1.0});
  f.fit(x);
  // True next values: 0.1 + 0.002 * (400 + h - 1).
  EXPECT_NEAR(f.forecast(1), 0.1 + 0.002 * 400, 0.02);
  EXPECT_NEAR(f.forecast(10), 0.1 + 0.002 * 409, 0.03);
}

TEST(HoltWinters, DampedTrendFlattensAtLongHorizons) {
  const std::vector<double> x = linear_series(0.2, 0.003, 300, 0.0, 2);
  HoltWintersForecaster damped({.damping = 0.8});
  HoltWintersForecaster undamped({.damping = 1.0});
  damped.fit(x);
  undamped.fit(x);
  // The damped forecast extends the trend less far.
  EXPECT_LT(damped.forecast(50), undamped.forecast(50));
}

TEST(HoltWinters, SeasonalModelTracksSeasonality) {
  Rng rng(3);
  std::vector<double> x(600);
  for (std::size_t t = 0; t < x.size(); ++t) {
    x[t] = 0.5 +
           0.2 * std::sin(2.0 * std::numbers::pi * static_cast<double>(t) /
                          24.0) +
           rng.normal(0.0, 0.01);
  }
  HoltWintersForecaster f({.season = 24});
  f.fit(x);
  for (const std::size_t h : {1u, 6u, 12u, 24u}) {
    const double expected =
        0.5 + 0.2 * std::sin(2.0 * std::numbers::pi *
                             static_cast<double>(x.size() + h - 1) / 24.0);
    EXPECT_NEAR(f.forecast(h), expected, 0.06) << "h = " << h;
  }
}

TEST(HoltWinters, UpdateAdvancesState) {
  const std::vector<double> x = linear_series(0.3, 0.0, 200, 0.01, 4);
  HoltWintersForecaster f;
  f.fit(x);
  // Feed a clear level shift; the forecast must follow it.
  for (int i = 0; i < 50; ++i) f.update(0.8);
  EXPECT_NEAR(f.forecast(1), 0.8, 0.1);
}

TEST(HoltWinters, OptimizedFitBeatsArbitraryParameters) {
  Rng rng(5);
  std::vector<double> x(500);
  double s = 0.0;
  for (double& v : x) {
    s = 0.9 * s + rng.normal(0.0, 0.03);
    v = 0.5 + s;
  }
  HoltWintersForecaster optimized({.optimize = true});
  HoltWintersForecaster fixed(
      {.optimize = false, .alpha = 0.9, .beta = 0.9, .gamma = 0.0});
  optimized.fit(x);
  fixed.fit(x);
  EXPECT_LE(optimized.training_sse(), fixed.training_sse());
}

TEST(HoltWinters, FittedParametersStayInRange) {
  const std::vector<double> x = linear_series(0.4, 0.001, 300, 0.02, 6);
  HoltWintersForecaster f;
  f.fit(x);
  EXPECT_GE(f.alpha(), 0.0);
  EXPECT_LE(f.alpha(), 1.0);
  EXPECT_GE(f.beta(), 0.0);
  EXPECT_LE(f.beta(), 1.0);
}

TEST(HoltWinters, FactoryCreatesIt) {
  const auto f = make_forecaster(ForecasterKind::kHoltWinters, 1);
  EXPECT_EQ(f->name(), "Holt");
  EXPECT_EQ(forecaster_kind_from_string("holt-winters"),
            ForecasterKind::kHoltWinters);
  EXPECT_EQ(to_string(ForecasterKind::kHoltWinters), "HoltWinters");
}

TEST(HoltWinters, SeasonFallsBackWhenSeriesTooShort) {
  // Season 50 but only 60 points: seasonal init needs 2 seasons, so the
  // model silently runs non-seasonally and must still produce forecasts.
  const std::vector<double> x = linear_series(0.5, 0.0, 60, 0.01, 7);
  HoltWintersForecaster f({.season = 50});
  f.fit(x);
  EXPECT_TRUE(std::isfinite(f.forecast(5)));
}

}  // namespace
}  // namespace resmon::forecast
