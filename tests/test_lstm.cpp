#include "forecast/lstm.hpp"

#include <cmath>
#include <numbers>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace resmon::forecast {
namespace {

std::vector<double> sine_series(std::size_t n, double period,
                                double noise_std, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> x(n);
  for (std::size_t t = 0; t < n; ++t) {
    x[t] = 0.5 +
           0.3 * std::sin(2.0 * std::numbers::pi * static_cast<double>(t) /
                          period) +
           rng.normal(0.0, noise_std);
  }
  return x;
}

TEST(Lstm, ValidatesOptions) {
  EXPECT_THROW(LstmForecaster({.hidden_size = 0}), InvalidArgument);
  EXPECT_THROW(LstmForecaster({.window = 1}), InvalidArgument);
  EXPECT_THROW(LstmForecaster({.epochs = 0}), InvalidArgument);
  EXPECT_THROW(LstmForecaster({.stride = 0}), InvalidArgument);
}

TEST(Lstm, UsageBeforeFitThrows) {
  LstmForecaster f;
  EXPECT_THROW(f.forecast(1), InvalidState);
  EXPECT_THROW(f.update(0.1), InvalidState);
}

TEST(Lstm, TooShortSeriesThrows) {
  LstmForecaster f({.window = 8});
  EXPECT_THROW(f.fit(std::vector<double>(5, 0.1)), InvalidArgument);
}

TEST(Lstm, ParameterCountMatchesArchitecture) {
  LstmForecaster f(
      {.hidden_size = 4, .window = 4, .horizons = {1, 5, 10}});
  // layer0: 4H*(1) + 4H*H + 4H = 16 + 64 + 16 = 96
  // layer1: 4H*H + 4H*H + 4H = 64 + 64 + 16 = 144
  // dense heads: 3 * (H + 1) = 15
  EXPECT_EQ(f.num_parameters(), 96u + 144u + 15u);
}

TEST(Lstm, RejectsBadHorizonBuckets) {
  EXPECT_THROW(LstmForecaster({.horizons = {}}), InvalidArgument);
  EXPECT_THROW(LstmForecaster({.horizons = {2, 5}}), InvalidArgument);
  EXPECT_THROW(LstmForecaster({.horizons = {1, 5, 5}}), InvalidArgument);
}

TEST(Lstm, BackwardMatchesNumericalGradient) {
  LstmForecaster f({.hidden_size = 4, .window = 6, .horizons = {1, 5}}, 11);
  Rng rng(2);
  std::vector<double> w(6);
  for (double& v : w) v = rng.uniform();
  EXPECT_LT(f.gradient_check(w, 0.7, 0), 1e-6);
  EXPECT_LT(f.gradient_check(w, 0.2, 1), 1e-6);
}

TEST(Lstm, ForecastInterpolatesBetweenHorizonHeads) {
  const std::vector<double> x = sine_series(300, 25.0, 0.01, 20);
  LstmForecaster f(
      {.hidden_size = 6, .window = 8, .epochs = 2, .horizons = {1, 10}},
      21);
  f.fit(x);
  const double f1 = f.forecast(1);
  const double f10 = f.forecast(10);
  const double f5 = f.forecast(5);  // interpolated
  const double lo = std::min(f1, f10);
  const double hi = std::max(f1, f10);
  EXPECT_GE(f5, lo - 1e-9);
  EXPECT_LE(f5, hi + 1e-9);
  // Beyond the last bucket, the last head's prediction is held.
  EXPECT_DOUBLE_EQ(f.forecast(10), f.forecast(99));
}

TEST(Lstm, TrainingReducesLoss) {
  const std::vector<double> x = sine_series(400, 25.0, 0.0, 1);
  LstmForecaster one_epoch({.hidden_size = 8, .window = 8, .epochs = 1},
                           7);
  one_epoch.fit(x);
  LstmForecaster many_epochs(
      {.hidden_size = 8, .window = 8, .epochs = 20}, 7);
  many_epochs.fit(x);
  EXPECT_LT(many_epochs.final_training_loss(),
            one_epoch.final_training_loss());
}

TEST(Lstm, LearnsCleanSineOneStepAhead) {
  const double period = 25.0;
  const std::vector<double> x = sine_series(600, period, 0.0, 2);
  LstmForecaster f({.hidden_size = 12, .window = 12, .epochs = 30,
                    .stride = 1, .learning_rate = 5e-3},
                   3);
  f.fit(x);
  // One-step forecast of the next sine value.
  const double expected =
      0.5 + 0.3 * std::sin(2.0 * std::numbers::pi *
                           static_cast<double>(x.size()) / period);
  EXPECT_NEAR(f.forecast(1), expected, 0.12);
}

TEST(Lstm, ForecastIsDeterministicGivenSeed) {
  const std::vector<double> x = sine_series(300, 20.0, 0.01, 4);
  LstmForecaster a({.hidden_size = 6, .window = 8, .epochs = 3}, 42);
  LstmForecaster b({.hidden_size = 6, .window = 8, .epochs = 3}, 42);
  a.fit(x);
  b.fit(x);
  EXPECT_DOUBLE_EQ(a.forecast(5), b.forecast(5));
}

TEST(Lstm, DifferentSeedsGiveDifferentModels) {
  const std::vector<double> x = sine_series(300, 20.0, 0.01, 5);
  LstmForecaster a({.hidden_size = 6, .window = 8, .epochs = 2}, 1);
  LstmForecaster b({.hidden_size = 6, .window = 8, .epochs = 2}, 2);
  a.fit(x);
  b.fit(x);
  EXPECT_NE(a.forecast(1), b.forecast(1));
}

TEST(Lstm, OutputIsNonNegativeByConstruction) {
  // ReLU head + min-max denormalization keeps forecasts >= lo.
  const std::vector<double> x = sine_series(300, 30.0, 0.02, 6);
  LstmForecaster f({.hidden_size = 6, .window = 8, .epochs = 2}, 7);
  f.fit(x);
  const double lo = *std::min_element(x.begin(), x.end());
  for (const std::size_t h : {1u, 5u, 20u}) {
    EXPECT_GE(f.forecast(h), lo - 1e-9);
  }
}

TEST(Lstm, ConstantSeriesForecastsConstant) {
  std::vector<double> x(200, 0.37);
  LstmForecaster f({.hidden_size = 4, .window = 6, .epochs = 5}, 8);
  f.fit(x);
  EXPECT_NEAR(f.forecast(1), 0.37, 0.2);
}

TEST(Lstm, UpdateShiftsTheInputWindow) {
  const std::vector<double> x = sine_series(300, 25.0, 0.0, 9);
  LstmForecaster f({.hidden_size = 8, .window = 10, .epochs = 10}, 10);
  f.fit(x);
  const double before = f.forecast(1);
  // Feeding several new points should change the forecast.
  for (int i = 0; i < 5; ++i) {
    f.update(0.9);
  }
  const double after = f.forecast(1);
  EXPECT_NE(before, after);
}

TEST(Lstm, HorizonZeroRejected) {
  const std::vector<double> x = sine_series(100, 10.0, 0.0, 11);
  LstmForecaster f({.hidden_size = 4, .window = 6, .epochs = 1}, 12);
  f.fit(x);
  EXPECT_THROW(f.forecast(0), InvalidArgument);
}

// Property sweep: multi-step forecasts on a smooth series stay within the
// normalized data envelope for all tested horizons.
class LstmHorizonTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LstmHorizonTest, IteratedForecastStaysInRange) {
  const std::size_t h = GetParam();
  const std::vector<double> x = sine_series(400, 30.0, 0.01, 13);
  LstmForecaster f({.hidden_size = 8, .window = 10, .epochs = 5}, 14);
  f.fit(x);
  const double fc = f.forecast(h);
  EXPECT_TRUE(std::isfinite(fc));
  EXPECT_GE(fc, -0.5);
  EXPECT_LE(fc, 1.5);
}

INSTANTIATE_TEST_SUITE_P(Horizons, LstmHorizonTest,
                         ::testing::Values(1, 3, 10, 25));

}  // namespace
}  // namespace resmon::forecast
