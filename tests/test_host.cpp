// resmon::host unit suite: every test drives the sampler, parsers,
// recording codec and sources from FakeProcfs fixtures and hand-advanced
// clocks — no live-kernel reads anywhere in ctest (DESIGN.md "Host
// collection"). The hostile-content cases double as the ASan+UBSan fodder
// the CI matrix runs: truncated files, counter wraps, zero-length
// intervals and corrupted recordings must all be *diagnosed*, never
// crash or silently misread.
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/pipeline.hpp"
#include "host/parsers.hpp"
#include "host/procfs.hpp"
#include "host/recording.hpp"
#include "host/sampler.hpp"
#include "host/source.hpp"
#include "obs/metrics.hpp"
#include "trace/loader.hpp"

namespace resmon {
namespace {

using host::FakeProcfs;
using host::HostParseError;
using host::HostSampler;
using host::HostSamplerOptions;

// ------------------------------------------------------------- fixtures

std::string stat_text(std::uint64_t user, std::uint64_t idle) {
  std::ostringstream ss;
  ss << "cpu  " << user << " 0 0 " << idle << " 0 0 0 0\n"
     << "cpu0 0 0 0 0 0 0 0 0\n"
     << "cpu1 0 0 0 0 0 0 0 0\n"
     << "intr 12345\n";
  return ss.str();
}

std::string meminfo_text(std::uint64_t total_kb, std::uint64_t avail_kb) {
  std::ostringstream ss;
  ss << "MemTotal:       " << total_kb << " kB\n"
     << "MemFree:        1 kB\n"
     << "MemAvailable:   " << avail_kb << " kB\n";
  return ss.str();
}

std::string net_dev_text(std::uint64_t rx, std::uint64_t tx) {
  std::ostringstream ss;
  ss << "Inter-|   Receive                |  Transmit\n"
     << " face |bytes    packets errs drop fifo frame compressed multicast|"
        "bytes    packets errs drop fifo colls carrier compressed\n"
     << "    lo: 999999 9 0 0 0 0 0 0 999999 9 0 0 0 0 0 0\n"
     << "  eth0: " << rx << " 10 0 0 0 0 0 0 " << tx << " 10 0 0 0 0 0 0\n";
  return ss.str();
}

std::string diskstats_text(std::uint64_t sectors_read,
                           std::uint64_t sectors_written) {
  std::ostringstream ss;
  ss << "   7       0 loop0 999 0 999999 0 999 0 999999 0 0 0 0\n"
     << "   1       0 ram0 999 0 999999 0 999 0 999999 0 0 0 0\n"
     << "   8       0 sda 10 0 " << sectors_read << " 100 5 0 "
     << sectors_written << " 100 0 0 0\n";
  return ss.str();
}

std::string pid_stat_text(std::uint64_t pid, const std::string& comm,
                          std::uint64_t ppid, std::uint64_t utime,
                          std::uint64_t stime) {
  std::ostringstream ss;
  ss << pid << " (" << comm << ") S " << ppid
     << " 1 1 0 -1 4194304 100 0 0 0 " << utime << " " << stime
     << " 0 0 20 0 1 0 100 1000 200\n";
  return ss.str();
}

std::string pid_io_text(std::uint64_t read_bytes, std::uint64_t write_bytes) {
  std::ostringstream ss;
  ss << "rchar: 99999\nwchar: 99999\nsyscr: 9\nsyscw: 9\n"
     << "read_bytes: " << read_bytes << "\nwrite_bytes: " << write_bytes
     << "\ncancelled_write_bytes: 0\n";
  return ss.str();
}

/// Whole-host fixture at one instant in counter time.
void set_host_files(FakeProcfs& fs, std::uint64_t busy, std::uint64_t idle,
                    std::uint64_t avail_kb, std::uint64_t sectors,
                    std::uint64_t net_bytes) {
  fs.set("stat", stat_text(busy, idle));
  fs.set("meminfo", meminfo_text(1000, avail_kb));
  fs.set("net/dev", net_dev_text(net_bytes / 2, net_bytes - net_bytes / 2));
  fs.set("diskstats", diskstats_text(sectors / 2, sectors - sectors / 2));
}

// --------------------------------------------------------------- parsers

TEST(Parsers, ProcStatJiffyArithmetic) {
  const host::CpuJiffies j =
      host::parse_proc_stat("cpu  1 2 3 4 5 6 7 8\n", "stat");
  EXPECT_EQ(j.user, 1u);
  EXPECT_EQ(j.idle, 4u);
  EXPECT_EQ(j.busy(), 1u + 2 + 3 + 6 + 7 + 8);
  EXPECT_EQ(j.total(), j.busy() + 4 + 5);
}

TEST(Parsers, ProcStatToleratesMissingLateColumns) {
  // user nice system idle only (ancient kernels): later columns read 0.
  const host::CpuJiffies j =
      host::parse_proc_stat("cpu 10 0 5 100\n", "stat");
  EXPECT_EQ(j.busy(), 15u);
  EXPECT_EQ(j.total(), 115u);
}

TEST(Parsers, ProcStatMissingAggregateLineIsDiagnosed) {
  try {
    host::parse_proc_stat("cpu0 1 2 3 4\nintr 5\n", "stat");
    FAIL() << "expected HostParseError";
  } catch (const HostParseError& e) {
    EXPECT_EQ(e.file(), "stat");
    EXPECT_EQ(e.field(), "cpu");
    EXPECT_NE(std::string(e.what()).find("no aggregate"), std::string::npos);
  }
}

TEST(Parsers, ProcStatTruncatedCounterListNamesTheLine) {
  try {
    host::parse_proc_stat("intr 5\ncpu  1 2 3\n", "stat");
    FAIL() << "expected HostParseError";
  } catch (const HostParseError& e) {
    EXPECT_EQ(e.line(), 2u);
    EXPECT_NE(std::string(e.what()).find("need >= 4"), std::string::npos);
  }
}

TEST(Parsers, ProcStatGarbageCounterNamesFileLineAndField) {
  try {
    host::parse_proc_stat("cpu  1 2 bogus 4\n", "stat");
    FAIL() << "expected HostParseError";
  } catch (const HostParseError& e) {
    EXPECT_EQ(e.file(), "stat");
    EXPECT_EQ(e.line(), 1u);
    EXPECT_EQ(e.field(), "system");
    EXPECT_NE(std::string(e.what()).find("'bogus'"), std::string::npos);
  }
}

TEST(Parsers, U64FieldRejectsOverflowAndTrailingGarbage) {
  EXPECT_THROW(host::parse_u64_field("f", 1, "x", "99999999999999999999"),
               HostParseError);
  EXPECT_THROW(host::parse_u64_field("f", 1, "x", "12kB"), HostParseError);
  EXPECT_THROW(host::parse_u64_field("f", 1, "x", "-3"), HostParseError);
  EXPECT_THROW(host::parse_u64_field("f", 1, "x", ""), HostParseError);
  EXPECT_EQ(host::parse_u64_field("f", 1, "x", "42"), 42u);
}

TEST(Parsers, MeminfoFieldsAndFailures) {
  const host::MemInfo mem =
      host::parse_meminfo(meminfo_text(1000, 750), "meminfo");
  EXPECT_EQ(mem.total_kb, 1000u);
  EXPECT_EQ(mem.available_kb, 750u);
  EXPECT_THROW(host::parse_meminfo("MemTotal: 10 kB\n", "meminfo"),
               HostParseError);  // MemAvailable missing
  EXPECT_THROW(
      host::parse_meminfo("MemTotal: 0 kB\nMemAvailable: 0 kB\n", "meminfo"),
      HostParseError);  // zero total would divide by zero later
}

TEST(Parsers, PidStatAnchorsOnLastParenthesis) {
  // A hostile comm containing spaces and ')' must not shift the fields.
  const host::PidStat st = host::parse_pid_stat(
      pid_stat_text(42, "evil) name (x", 7, 100, 50), "42/stat");
  EXPECT_EQ(st.pid, 42u);
  EXPECT_EQ(st.comm, "evil) name (x");
  EXPECT_EQ(st.state, 'S');
  EXPECT_EQ(st.ppid, 7u);
  EXPECT_EQ(st.utime, 100u);
  EXPECT_EQ(st.stime, 50u);
}

TEST(Parsers, PidStatTruncatedTailIsDiagnosed) {
  try {
    host::parse_pid_stat("42 (a) S 1 2 3\n", "42/stat");
    FAIL() << "expected HostParseError";
  } catch (const HostParseError& e) {
    EXPECT_EQ(e.field(), "stime");
    EXPECT_NE(std::string(e.what()).find("truncated"), std::string::npos);
  }
}

TEST(Parsers, PidStatRejectsMissingCommAndEmptyFile) {
  EXPECT_THROW(host::parse_pid_stat("42 noparens S 1\n", "42/stat"),
               HostParseError);
  EXPECT_THROW(host::parse_pid_stat("", "42/stat"), HostParseError);
}

TEST(Parsers, StatmAndPidIo) {
  EXPECT_EQ(host::parse_statm_rss_pages("300 200 50 10 0 150 0\n",
                                        "42/statm"),
            200u);
  EXPECT_THROW(host::parse_statm_rss_pages("300\n", "42/statm"),
               HostParseError);
  const host::PidIo io = host::parse_pid_io(pid_io_text(1000, 500), "42/io");
  EXPECT_EQ(io.read_bytes, 1000u);
  EXPECT_EQ(io.write_bytes, 500u);
  EXPECT_THROW(host::parse_pid_io("read_bytes: 1\n", "42/io"),
               HostParseError);  // write_bytes missing
}

TEST(Parsers, NetDevSumsInterfacesExceptLoopback) {
  const host::NetDevTotals t =
      host::parse_net_dev(net_dev_text(1000, 2000), "net/dev");
  EXPECT_EQ(t.rx_bytes, 1000u);  // lo's 999999 not counted
  EXPECT_EQ(t.tx_bytes, 2000u);
}

TEST(Parsers, NetDevShortRowNamesTheInterface) {
  try {
    host::parse_net_dev("header\nheader\n  eth0: 1 2 3\n", "net/dev");
    FAIL() << "expected HostParseError";
  } catch (const HostParseError& e) {
    EXPECT_EQ(e.field(), "eth0");
    EXPECT_EQ(e.line(), 3u);
    EXPECT_NE(std::string(e.what()).find("need 16"), std::string::npos);
  }
}

TEST(Parsers, NetDevWithNoInterfaceRowsIsDiagnosed) {
  EXPECT_THROW(host::parse_net_dev("header only\n", "net/dev"),
               HostParseError);
}

TEST(Parsers, DiskstatsSkipsPseudoDevicesAndDiagnosesShortRows) {
  const host::DiskTotals t =
      host::parse_diskstats(diskstats_text(100, 200), "diskstats");
  EXPECT_EQ(t.sectors_read, 100u);  // loop0/ram0 ignored
  EXPECT_EQ(t.sectors_written, 200u);
  EXPECT_THROW(host::parse_diskstats("8 0 sda 1 2 3\n", "diskstats"),
               HostParseError);
}

TEST(Parsers, CgroupFiles) {
  EXPECT_EQ(host::parse_cgroup_cpu_usec(
                "usage_usec 123456\nuser_usec 100\nsystem_usec 23\n",
                "cpu.stat"),
            123456u);
  EXPECT_THROW(host::parse_cgroup_cpu_usec("user_usec 100\n", "cpu.stat"),
               HostParseError);
  EXPECT_EQ(host::parse_cgroup_scalar("512000\n", "memory.current"), 512000u);
  EXPECT_THROW(host::parse_cgroup_scalar("max\n", "memory.current"),
               HostParseError);
  EXPECT_THROW(host::parse_cgroup_scalar("1 2\n", "memory.current"),
               HostParseError);
}

// ------------------------------------------------------------ FakeProcfs

TEST(FakeProcfsTest, PidsAreNumericallySortedAndDeduped) {
  FakeProcfs fs;
  fs.set("10/stat", "x");
  fs.set("9/stat", "x");
  fs.set("9/statm", "x");
  fs.set("100/stat", "x");
  fs.set("net/dev", "x");  // non-numeric dirs are not pids
  EXPECT_EQ(fs.pids(), (std::vector<std::uint64_t>{9, 10, 100}));
  EXPECT_FALSE(fs.read("missing").has_value());
  EXPECT_EQ(fs.read("net/dev").value(), "x");
}

// ---------------------------------------------------- whole-host sampling

HostSamplerOptions metered_options(obs::MetricsRegistry* registry) {
  HostSamplerOptions o;
  o.io_full_scale = 512e3;  // 1000 sectors/s = full scale
  o.net_full_scale = 1e6;
  o.metrics = registry;
  return o;
}

TEST(HostSamplerTest, FirstSampleHasRealLevelsAndZeroRates) {
  FakeProcfs fs;
  set_host_files(fs, 100, 900, 750, 200, 2000);
  obs::MetricsRegistry registry;
  HostSampler sampler(fs, metered_options(&registry));
  const std::vector<double> x = sampler.sample(1000);
  ASSERT_EQ(x.size(), HostSampler::kNumResources);
  EXPECT_EQ(x[0], 0.0);                // cpu: no previous jiffies
  EXPECT_DOUBLE_EQ(x[1], 0.25);        // memory: (1000-750)/1000
  EXPECT_EQ(x[2], 0.0);                // io: no previous counters
  EXPECT_EQ(x[3], 0.0);                // net
  EXPECT_EQ(registry.value("resmon_host_samples_total").value_or(0), 1.0);
}

TEST(HostSamplerTest, SecondSampleComputesRatesFromCounterDeltas) {
  FakeProcfs fs;
  set_host_files(fs, 100, 900, 750, 200, 2000);
  obs::MetricsRegistry registry;
  HostSampler sampler(fs, metered_options(&registry));
  sampler.sample(1000);
  // +100 busy jiffies of +400 total; +500 sectors; +500000 net bytes; 1 s.
  set_host_files(fs, 200, 1200, 600, 700, 502000);
  const std::vector<double> x = sampler.sample(2000);
  EXPECT_DOUBLE_EQ(x[0], 0.25);  // 100 / 400 jiffies
  EXPECT_DOUBLE_EQ(x[1], 0.4);   // (1000-600)/1000
  EXPECT_DOUBLE_EQ(x[2], 0.5);   // 500 sectors * 512 B / 1 s / 512e3
  EXPECT_DOUBLE_EQ(x[3], 0.5);   // 500000 B / 1 s / 1e6
  EXPECT_EQ(registry.value("resmon_host_utilization",
                           {{"resource", "cpu"}}).value_or(-1),
            0.25);
}

TEST(HostSamplerTest, RatesClampAtFullScale) {
  FakeProcfs fs;
  set_host_files(fs, 100, 900, 750, 0, 0);
  HostSampler sampler(fs, metered_options(nullptr));
  sampler.sample(1000);
  set_host_files(fs, 5000, 900, 750, 1000000, 100000000);
  const std::vector<double> x = sampler.sample(2000);
  EXPECT_EQ(x[0], 1.0);
  EXPECT_EQ(x[2], 1.0);
  EXPECT_EQ(x[3], 1.0);
}

TEST(HostSamplerTest, CounterWrapYieldsZeroRateNotSpike) {
  FakeProcfs fs;
  set_host_files(fs, 100, 900, 750, 200, 500000);
  obs::MetricsRegistry registry;
  HostSampler sampler(fs, metered_options(&registry));
  sampler.sample(1000);
  // Net counter moves backwards (wrap/reset); CPU/disk advance normally.
  set_host_files(fs, 200, 1200, 750, 700, 1000);
  const std::vector<double> x = sampler.sample(2000);
  EXPECT_DOUBLE_EQ(x[0], 0.25);
  EXPECT_EQ(x[3], 0.0);  // not (2^64 - huge) / scale
  EXPECT_EQ(registry.value("resmon_host_counter_wraps_total").value_or(0),
            1.0);
  // The next interval re-baselines off the post-wrap value.
  set_host_files(fs, 300, 1500, 750, 1200, 501000);
  EXPECT_DOUBLE_EQ(sampler.sample(3000)[3], 0.5);
}

TEST(HostSamplerTest, CpuJiffyWrapYieldsZeroCpu) {
  FakeProcfs fs;
  set_host_files(fs, 1000, 900, 750, 0, 0);
  obs::MetricsRegistry registry;
  HostSampler sampler(fs, metered_options(&registry));
  sampler.sample(1000);
  set_host_files(fs, 100, 3000, 750, 0, 0);  // busy wrapped, idle advanced
  const std::vector<double> x = sampler.sample(2000);
  EXPECT_EQ(x[0], 0.0);
  EXPECT_GE(registry.value("resmon_host_counter_wraps_total").value_or(0),
            1.0);
}

TEST(HostSamplerTest, ZeroLengthIntervalYieldsZeroRates) {
  FakeProcfs fs;
  set_host_files(fs, 100, 900, 750, 200, 2000);
  HostSampler sampler(fs, metered_options(nullptr));
  sampler.sample(1000);
  set_host_files(fs, 200, 1200, 750, 700, 502000);
  const std::vector<double> x = sampler.sample(1000);  // dt = 0
  EXPECT_EQ(x[2], 0.0);  // no division by zero
  EXPECT_EQ(x[3], 0.0);
}

TEST(HostSamplerTest, MissingRequiredFileIsAnErrorAndCounted) {
  FakeProcfs fs;
  set_host_files(fs, 100, 900, 750, 200, 2000);
  fs.remove("meminfo");
  obs::MetricsRegistry registry;
  HostSampler sampler(fs, metered_options(&registry));
  try {
    sampler.sample(1000);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("meminfo"), std::string::npos);
  }
  EXPECT_EQ(registry.value("resmon_host_parse_errors_total").value_or(0),
            1.0);
  EXPECT_EQ(registry.value("resmon_host_samples_total").value_or(-1), 0.0);
}

TEST(HostSamplerTest, MalformedContentNamesFileLineAndField) {
  FakeProcfs fs;
  set_host_files(fs, 100, 900, 750, 200, 2000);
  fs.set("stat", "cpu  1 2 NaN 4\n");
  obs::MetricsRegistry registry;
  HostSampler sampler(fs, metered_options(&registry));
  try {
    sampler.sample(1000);
    FAIL() << "expected HostParseError";
  } catch (const HostParseError& e) {
    EXPECT_EQ(e.file(), "stat");
    EXPECT_EQ(e.line(), 1u);
    EXPECT_EQ(e.field(), "system");
  }
  EXPECT_EQ(registry.value("resmon_host_parse_errors_total").value_or(0),
            1.0);
}

// ------------------------------------------------------ process-tree mode

/// Two watched processes (100 and its child 101) plus an unrelated 102.
void set_tree_files(FakeProcfs& fs, std::uint64_t jiffy_scale,
                    std::uint64_t io_scale) {
  fs.set("100/stat", pid_stat_text(100, "root proc", 1, 10 * jiffy_scale,
                                   10 * jiffy_scale));
  fs.set("100/statm", "300 200 50 10 0 150 0\n");
  fs.set("100/io", pid_io_text(1000 * io_scale, 1000 * io_scale));
  fs.set("101/stat",
         pid_stat_text(101, "worker", 100, 5 * jiffy_scale, 5 * jiffy_scale));
  fs.set("101/statm", "150 100 20 5 0 80 0\n");
  fs.set("101/io", pid_io_text(500 * io_scale, 500 * io_scale));
  fs.set("102/stat", pid_stat_text(102, "bystander", 1, 999999, 999999));
  fs.set("102/statm", "99999 99999 0 0 0 0 0\n");
  fs.set("102/io", pid_io_text(99999999, 99999999));
}

HostSamplerOptions tree_options(obs::MetricsRegistry* registry) {
  HostSamplerOptions o;
  o.watch_pids = {100};
  o.page_size = 1024;
  o.io_full_scale = 10e3;  // 10 kB/s = full scale
  o.net_full_scale = 1e6;
  o.metrics = registry;
  return o;
}

TEST(HostSamplerTest, WatchedTreeAggregatesDescendantsOnly) {
  FakeProcfs fs;
  set_host_files(fs, 100, 900, 750, 0, 0);
  set_tree_files(fs, 1, 1);
  obs::MetricsRegistry registry;
  HostSampler sampler(fs, tree_options(&registry));
  const std::vector<double> x = sampler.sample(1000);
  // Memory is immediate: (200 + 100 pages) * 1024 B / 1024000 B = 0.3;
  // the bystander's huge RSS must not leak in.
  EXPECT_DOUBLE_EQ(x[1], 0.3);
  EXPECT_EQ(registry.value("resmon_host_watched_processes").value_or(0),
            2.0);

  // Tree jiffies double (+30) while the host total advances +400.
  set_host_files(fs, 200, 1200, 750, 0, 0);
  set_tree_files(fs, 2, 2);
  const std::vector<double> y = sampler.sample(2000);
  EXPECT_DOUBLE_EQ(y[0], 30.0 / 400.0);
  // Tree IO doubled: +3000 B over 1 s at 10 kB/s full scale.
  EXPECT_DOUBLE_EQ(y[2], 0.3);
}

TEST(HostSamplerTest, DescendantsExcludedWhenDisabled) {
  FakeProcfs fs;
  set_host_files(fs, 100, 900, 750, 0, 0);
  set_tree_files(fs, 1, 1);
  obs::MetricsRegistry registry;
  HostSamplerOptions o = tree_options(&registry);
  o.include_descendants = false;
  HostSampler sampler(fs, o);
  const std::vector<double> x = sampler.sample(1000);
  EXPECT_DOUBLE_EQ(x[1], 200.0 * 1024 / 1024000);  // root's RSS only
  EXPECT_EQ(registry.value("resmon_host_watched_processes").value_or(0),
            1.0);
}

TEST(HostSamplerTest, VanishedPidFilesAreExitRacesNotErrors) {
  FakeProcfs fs;
  set_host_files(fs, 100, 900, 750, 0, 0);
  set_tree_files(fs, 1, 1);
  // 101 exits between the directory scan and the reads: its stat vanishes
  // but a stale statm key remains, so pids() still lists it.
  fs.remove("101/stat");
  HostSampler sampler(fs, tree_options(nullptr));
  const std::vector<double> x = sampler.sample(1000);
  EXPECT_DOUBLE_EQ(x[1], 200.0 * 1024 / 1024000);  // root only
}

TEST(HostSamplerTest, WatchedRootGoneMeansEmptyTree) {
  FakeProcfs fs;
  set_host_files(fs, 100, 900, 750, 0, 0);
  obs::MetricsRegistry registry;
  HostSampler sampler(fs, tree_options(&registry));
  const std::vector<double> x = sampler.sample(1000);
  EXPECT_EQ(x[1], 0.0);
  EXPECT_EQ(registry.value("resmon_host_watched_processes").value_or(-1),
            0.0);
}

// ------------------------------------------------------------ cgroup mode

TEST(HostSamplerTest, CgroupV2OverridesCpuAndMemory) {
  FakeProcfs fs;
  set_host_files(fs, 100, 900, 750, 0, 0);
  FakeProcfs cgroup;
  cgroup.set("cpu.stat", "usage_usec 1000000\nuser_usec 600000\n");
  cgroup.set("memory.current", "512000\n");
  obs::MetricsRegistry registry;
  HostSamplerOptions o = metered_options(&registry);
  o.cgroup = &cgroup;
  HostSampler sampler(fs, o);
  const std::vector<double> x = sampler.sample(1000);
  EXPECT_DOUBLE_EQ(x[1], 0.5);  // 512000 B / 1024000 B
  EXPECT_EQ(registry.value("resmon_host_cgroup_active").value_or(0), 1.0);

  // +1 s of usage over 1 s wall on the fixture's 2 cpus = 0.5 utilization.
  set_host_files(fs, 200, 1200, 750, 0, 0);
  cgroup.set("cpu.stat", "usage_usec 2000000\nuser_usec 900000\n");
  EXPECT_DOUBLE_EQ(sampler.sample(2000)[0], 0.5);
}

TEST(HostSamplerTest, PartialCgroupFallsBackToProcfs) {
  FakeProcfs fs;
  set_host_files(fs, 100, 900, 750, 0, 0);
  FakeProcfs cgroup;
  cgroup.set("cpu.stat", "usage_usec 1000000\n");  // memory.current missing
  obs::MetricsRegistry registry;
  HostSamplerOptions o = metered_options(&registry);
  o.cgroup = &cgroup;
  HostSampler sampler(fs, o);
  const std::vector<double> x = sampler.sample(1000);
  EXPECT_DOUBLE_EQ(x[1], 0.25);  // procfs meminfo view
  EXPECT_EQ(registry.value("resmon_host_cgroup_active").value_or(-1), 0.0);
}

// -------------------------------------------------------------- recording

host::Recording write_and_read(const std::vector<std::vector<double>>& rows) {
  std::ostringstream out;
  host::RecordingWriter writer(out, 100, rows.front().size());
  for (std::size_t t = 0; t < rows.size(); ++t) {
    writer.append(rows[t], 5000 + 100 * t);
  }
  writer.finish();
  std::istringstream in(out.str());
  return host::read_recording(in, "<mem>");
}

TEST(RecordingTest, RoundTripsValuesBitExactly) {
  const std::vector<std::vector<double>> rows = {
      {0.1, 1.0 / 3.0, 0.0, 1e-17},
      {0.30000000000000004, 1.0, 0.9999999999999999, 2.2250738585072014e-308},
  };
  const host::Recording rec = write_and_read(rows);
  EXPECT_EQ(rec.interval_ms, 100u);
  EXPECT_EQ(rec.rows, rows);  // exact double equality, not approximate
  EXPECT_EQ(rec.timestamps_ms,
            (std::vector<std::uint64_t>{5000, 5100}));
}

TEST(RecordingTest, RecordingsDoubleAsPlainCsvTraces) {
  // The format is a strict superset of the trace CSV grammar: the magic,
  // metadata, ts and end lines are comments the loader skips.
  std::ostringstream out;
  host::RecordingWriter writer(out, 100, 4);
  const std::vector<double> row0 = {0.25, 0.5, 0.0, 0.125};
  const std::vector<double> row1 = {0.5, 0.75, 1.0, 0.0};
  writer.append(row0, 1000);
  writer.append(row1, 1100);
  writer.finish();
  std::istringstream in(out.str());
  const trace::InMemoryTrace t = trace::load_csv(in);
  EXPECT_EQ(t.num_nodes(), 1u);
  EXPECT_EQ(t.num_steps(), 2u);
  EXPECT_EQ(t.num_resources(), 4u);
  EXPECT_EQ(t.measurement(0, 0), row0);
  EXPECT_EQ(t.measurement(0, 1), row1);
}

std::string valid_recording_text() {
  std::ostringstream out;
  host::RecordingWriter writer(out, 100, 2);
  writer.append(std::vector<double>{0.1, 0.2}, 1000);
  writer.append(std::vector<double>{0.3, 0.4}, 1100);
  writer.finish();
  return out.str();
}

void expect_rejects(std::string text, const std::string& detail_substring) {
  std::istringstream in(text);
  try {
    host::read_recording(in, "<mem>");
    FAIL() << "expected HostParseError containing '" << detail_substring
           << "'";
  } catch (const HostParseError& e) {
    EXPECT_NE(std::string(e.what()).find(detail_substring),
              std::string::npos)
        << "actual: " << e.what();
  }
}

std::string replace_once(std::string text, const std::string& from,
                         const std::string& to) {
  const std::size_t at = text.find(from);
  EXPECT_NE(at, std::string::npos);
  return text.replace(at, from.size(), to);
}

TEST(RecordingTest, HostileInputsAreDiagnosedNotCrashed) {
  const std::string good = valid_recording_text();
  // Corrupted magic line.
  expect_rejects(replace_once(good, "recording v1", "recording v9"),
                 "not a host recording");
  // Corrupted/unknown metadata.
  expect_rejects(replace_once(good, "interval_ms=", "cadence_ms="),
                 "unknown metadata key");
  expect_rejects(replace_once(good, "resources=2", "resources=0"),
                 "nonzero resources");
  // Header drift.
  expect_rejects(replace_once(good, "node,step", "node,slot"),
                 "expected 'node,step'");
  // Rows must be node 0 and consecutive.
  expect_rejects(replace_once(good, "0,1,", "1,1,"), "single-node");
  expect_rejects(replace_once(good, "0,1,", "0,7,"), "consecutive step");
  // Values must be finite numbers. (%.17g writes 0.3 with its full
  // mantissa, so match the serialized text, not the source literal.)
  expect_rejects(replace_once(good, "0.29999999999999999", "nan"),
                 "finite number");
  expect_rejects(replace_once(good, "0.29999999999999999", "inf"),
                 "finite number");
  // Truncation: missing trailer, wrong row count, data after the end.
  expect_rejects(good.substr(0, good.find("# ts_ms=")), "truncated");
  expect_rejects(replace_once(good, "# end rows=2", "# end rows=5"),
                 "truncated or corrupted");
  expect_rejects(good + "0,2,0.5,0.6\n", "after the '# end'");
  // Timestamp list must match the rows.
  expect_rejects(replace_once(good, "ts_ms=1000,1100", "ts_ms=1000"),
                 "timestamp list");
  // An empty-but-well-formed recording carries no samples to replay.
  std::ostringstream empty;
  host::RecordingWriter writer(empty, 100, 2);
  writer.finish();
  expect_rejects(empty.str(), "no samples");
}

TEST(RecordingTest, WriterEnforcesItsProtocol) {
  std::ostringstream out;
  host::RecordingWriter writer(out, 100, 2);
  EXPECT_THROW(writer.append(std::vector<double>{0.1}, 1000), Error);
  writer.append(std::vector<double>{0.1, 0.2}, 1000);
  writer.finish();
  EXPECT_THROW(writer.finish(), Error);
  EXPECT_THROW(writer.append(std::vector<double>{0.1, 0.2}, 1100), Error);
}

// ---------------------------------------------------------------- sources

TEST(ProcfsSamplerSourceTest, PacesSlotsAgainstTheFirstSampleAnchor) {
  FakeProcfs fs;
  set_host_files(fs, 100, 900, 750, 200, 2000);
  HostSampler sampler(fs, metered_options(nullptr));

  std::uint64_t now = 1000;
  std::vector<std::uint64_t> sleeps;
  std::ostringstream out;
  host::RecordingWriter recorder(out, 100, HostSampler::kNumResources);
  host::ProcfsSamplerSource::Options o;
  o.interval_ms = 100;
  o.now_ms = [&now] { return now; };
  o.sleep_ms = [&now, &sleeps](std::uint64_t ms) {
    sleeps.push_back(ms);
    now += ms;
  };
  o.recorder = &recorder;
  host::ProcfsSamplerSource source(sampler, o);

  source.measurement(0);  // anchors at 1000, no sleep
  now += 37;              // sampling overhead / jitter
  source.measurement(1);  // deadline 1100: sleeps 63
  now += 250;             // a slow slot overshoots slot 2 entirely
  source.measurement(2);  // deadline 1200 already passed: no sleep
  recorder.finish();

  EXPECT_EQ(sleeps, (std::vector<std::uint64_t>{63}));
  std::istringstream in(out.str());
  const host::Recording rec = host::read_recording(in, "<mem>");
  EXPECT_EQ(rec.timestamps_ms,
            (std::vector<std::uint64_t>{1000, 1100, 1350}));
  EXPECT_EQ(sampler.samples_taken(), 3u);
}

TEST(ReplaySourceTest, ReplaysRowsBoundedAndBitExact) {
  const std::vector<std::vector<double>> rows = {{0.1, 0.2}, {0.3, 0.4}};
  host::ReplaySource source(write_and_read(rows));
  EXPECT_EQ(source.num_resources(), 2u);
  EXPECT_EQ(source.num_steps(), 2u);
  EXPECT_EQ(source.measurement(0), rows[0]);
  EXPECT_EQ(source.measurement(1), rows[1]);
  EXPECT_THROW(source.measurement(2), Error);
}

// ------------------------------------------- record/replay determinism

/// The tentpole invariant end to end, kernel-free: sample a *changing*
/// FakeProcfs through the live source while recording, then replay the
/// recording — the two pipelines' forecasts must be bit-identical at
/// every step and horizon.
TEST(RecordReplay, PipelinesOverRecordAndReplayAreBitIdentical) {
  FakeProcfs fs;
  set_host_files(fs, 100, 900, 750, 200, 2000);
  HostSampler sampler(fs, metered_options(nullptr));

  std::uint64_t now = 1000;
  std::ostringstream out;
  host::RecordingWriter recorder(out, 100, HostSampler::kNumResources);
  host::ProcfsSamplerSource::Options o;
  o.interval_ms = 100;
  o.now_ms = [&now] { return now; };
  o.sleep_ms = [&now](std::uint64_t ms) { now += ms; };
  o.recorder = &recorder;
  host::ProcfsSamplerSource source(sampler, o);

  const std::size_t kSteps = 24;
  std::vector<std::vector<double>> live_rows;
  for (std::size_t t = 0; t < kSteps; ++t) {
    live_rows.push_back(source.measurement(t));
    // Mutate the "kernel" between samples: drifting counters make every
    // slot's measurement distinct.
    set_host_files(fs, 100 + 40 * (t + 1), 900 + 360 * (t + 1),
                   750 - 10 * (t % 20), 200 + 137 * (t + 1),
                   2000 + 90001 * (t + 1));
  }
  recorder.finish();

  std::istringstream in(out.str());
  const host::Recording rec = host::read_recording(in, "<mem>");
  ASSERT_EQ(rec.rows, live_rows);  // the recording *is* the live series

  const auto to_trace = [](const std::vector<std::vector<double>>& rows) {
    trace::InMemoryTrace t(1, rows.size(), rows.front().size());
    for (std::size_t step = 0; step < rows.size(); ++step) {
      for (std::size_t r = 0; r < rows[step].size(); ++r) {
        t.set_value(0, step, r, rows[step][r]);
      }
    }
    return t;
  };
  const trace::InMemoryTrace live = to_trace(live_rows);
  const trace::InMemoryTrace replay = to_trace(rec.rows);

  core::PipelineOptions popt;
  popt.num_clusters = 1;
  popt.schedule = {.initial_steps = 4, .retrain_interval = 8};
  core::MonitoringPipeline a(live, popt);
  core::MonitoringPipeline b(replay, popt);
  for (std::size_t t = 0; t < kSteps; ++t) {
    a.step();
    b.step();
    for (const std::size_t h : {std::size_t{0}, std::size_t{1}}) {
      const Matrix fa = a.forecast_all(h);
      const Matrix fb = b.forecast_all(h);
      ASSERT_EQ(fa.rows(), fb.rows());
      for (std::size_t n = 0; n < fa.rows(); ++n) {
        for (std::size_t r = 0; r < fa.cols(); ++r) {
          ASSERT_EQ(fa(n, r), fb(n, r))
              << "forecast diverged at t=" << t << " h=" << h;
        }
      }
    }
  }
}

}  // namespace
}  // namespace resmon
