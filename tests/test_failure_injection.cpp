// Failure-injection tests: lossy/delayed channels, the deadband policy, the
// pipeline's behaviour under an unreliable uplink, and the faultnet chaos
// harness layered over the wire-codec path.
#include <cmath>

#include <gtest/gtest.h>

#include "collect/deadband_transmitter.hpp"
#include "collect/fleet_collector.hpp"
#include "common/rng.hpp"
#include "core/pipeline.hpp"
#include "faultnet/fault_spec.hpp"
#include "golden_fixture.hpp"
#include "trace/synthetic.hpp"
#include "transport/channel.hpp"

namespace resmon {
namespace {

// ---- lossy / delayed channel ---------------------------------------------

TEST(LossyChannel, ValidatesDropProbability) {
  EXPECT_THROW(transport::Channel({.drop_probability = 1.5}),
               InvalidArgument);
}

TEST(LossyChannel, DropsApproximatelyTheConfiguredFraction) {
  transport::Channel ch({.drop_probability = 0.3, .seed = 7});
  for (int i = 0; i < 5000; ++i) {
    ch.send({.node = 0, .step = static_cast<std::size_t>(i), .values = {0.1}});
    ch.drain();
  }
  const double drop_rate =
      static_cast<double>(ch.messages_dropped()) /
      static_cast<double>(ch.messages_sent());
  EXPECT_NEAR(drop_rate, 0.3, 0.03);
}

TEST(LossyChannel, DroppedMessagesStillConsumeBandwidth) {
  transport::Channel ch({.drop_probability = 1.0, .seed = 1});
  ch.send({.node = 0, .step = 0, .values = {0.1}});
  EXPECT_EQ(ch.messages_sent(), 1u);
  EXPECT_EQ(ch.messages_dropped(), 1u);
  EXPECT_GT(ch.bytes_sent(), 0u);
  EXPECT_TRUE(ch.drain().empty());
}

TEST(DelayedChannel, MessagesSurfaceWithinMaxDelay) {
  transport::Channel ch({.max_delay_slots = 3, .seed = 2});
  for (int i = 0; i < 100; ++i) {
    ch.send(
        {.node = static_cast<std::size_t>(i), .step = 0, .values = {0.1}});
  }
  std::size_t delivered = 0;
  for (int slot = 0; slot <= 3; ++slot) {
    delivered += ch.drain().size();
  }
  EXPECT_EQ(delivered, 100u);
  EXPECT_EQ(ch.pending(), 0u);
}

TEST(DelayedChannel, ZeroDelayIsImmediate) {
  transport::Channel ch({.max_delay_slots = 0, .seed = 3});
  ch.send({.node = 0, .step = 0, .values = {0.5}});
  EXPECT_EQ(ch.drain().size(), 1u);
}

TEST(DelayedChannel, OutOfOrderDeliveryKeepsFreshestInStore) {
  // Older messages surfacing after newer ones must not overwrite them.
  transport::CentralStore store(1, 1);
  store.apply({.node = 0, .step = 10, .values = {0.9}});
  store.apply({.node = 0, .step = 4, .values = {0.1}});  // late arrival
  EXPECT_DOUBLE_EQ(store.stored(0)[0], 0.9);
}

// ---- deadband policy -------------------------------------------------------

TEST(Deadband, ValidatesOptions) {
  EXPECT_THROW(collect::DeadbandTransmitter({.delta = 0.0}),
               InvalidArgument);
  EXPECT_THROW(collect::DeadbandTransmitter({.adaptation_rate = 1.0}),
               InvalidArgument);
  EXPECT_THROW(
      collect::DeadbandTransmitter({.min_delta = 0.5, .max_delta = 0.1}),
      InvalidArgument);
}

TEST(Deadband, TransmitsFirstMeasurement) {
  collect::DeadbandTransmitter tx({});
  EXPECT_TRUE(tx.decide(0, std::vector<double>{0.5}));
}

TEST(Deadband, FixedDeltaSendsOnlyOnChange) {
  collect::DeadbandTransmitter tx(
      {.delta = 0.1, .target_frequency = 0.0});  // calibration off
  EXPECT_TRUE(tx.decide(0, std::vector<double>{0.5}));
  EXPECT_FALSE(tx.decide(1, std::vector<double>{0.55}));  // within band
  EXPECT_TRUE(tx.decide(2, std::vector<double>{0.7}));    // outside band
  EXPECT_EQ(tx.transmissions(), 2u);
}

TEST(Deadband, CalibrationTracksTargetFrequency) {
  collect::DeadbandTransmitter tx(
      {.delta = 0.5, .target_frequency = 0.3, .adaptation_rate = 0.05});
  Rng rng(4);
  double x = 0.5;
  for (std::size_t t = 0; t < 5000; ++t) {
    x = std::clamp(x + rng.normal(0.0, 0.05), 0.0, 1.0);
    tx.decide(t, std::vector<double>{x});
  }
  EXPECT_NEAR(tx.actual_frequency(), 0.3, 0.06);
}

TEST(Deadband, FleetFactorySupportsIt) {
  const trace::InMemoryTrace t =
      testing::make_golden_trace("alibaba", 10, 500, 5);
  collect::FleetCollector fleet(
      t, collect::make_policy_factory(collect::PolicyKind::kDeadband, 0.3));
  for (std::size_t step = 0; step < t.num_steps(); ++step) fleet.step(step);
  EXPECT_NEAR(fleet.average_actual_frequency(), 0.3, 0.1);
}

// ---- pipeline under failure ------------------------------------------------

core::PipelineOptions lossy_options(double drop, std::size_t delay) {
  core::PipelineOptions o;
  o.num_clusters = 3;
  o.schedule = {.initial_steps = 50, .retrain_interval = 100};
  o.channel.drop_probability = drop;
  o.channel.max_delay_slots = delay;
  o.channel.seed = 9;
  return o;
}

TEST(PipelineFailures, SurvivesDropsAndDelays) {
  const trace::InMemoryTrace t =
      testing::make_golden_trace("google", 20, 300, 6);
  core::MonitoringPipeline pipeline(t, lossy_options(0.2, 2));
  pipeline.run(300);
  EXPECT_TRUE(pipeline.done());
  const Matrix f = pipeline.forecast_all(1);
  for (std::size_t i = 0; i < t.num_nodes(); ++i) {
    for (std::size_t r = 0; r < t.num_resources(); ++r) {
      EXPECT_TRUE(std::isfinite(f(i, r)));
    }
  }
}

TEST(PipelineFailures, LossRaisesCollectionError) {
  const trace::InMemoryTrace t =
      testing::make_golden_trace("google", 25, 400, 7);

  auto run_rmse = [&](double drop) {
    core::MonitoringPipeline pipeline(t, lossy_options(drop, 0));
    core::RmseAccumulator acc;
    while (!pipeline.done()) {
      pipeline.step();
      if (!pipeline.collector().store().complete()) continue;  // warm-up
      acc.add(pipeline.rmse_at(0));
    }
    return acc.value();
  };
  // 40% loss must hurt the stored view relative to a reliable uplink.
  EXPECT_GT(run_rmse(0.4), run_rmse(0.0));
}

// ---- chaos harness over the wire path --------------------------------------

TEST(PipelineChaos, DuplicationAndReorderMatchTheGoldenRunBitForBit) {
  // Duplicates are deduped by the store (freshest-wins) and a shuffled
  // drain batch holds at most one fresh sample per node, so these wire
  // faults must be invisible: the chaos run's forecasts equal the clean
  // run's exactly, double for double.
  const trace::InMemoryTrace t =
      testing::make_golden_trace("google", 15, 250, 11);

  // Stop one slot short so rmse_at(1) still has ground truth to score
  // against.
  core::PipelineOptions clean = lossy_options(0.0, 0);
  core::MonitoringPipeline golden(t, clean);
  golden.run(249);

  core::PipelineOptions chaos = lossy_options(0.0, 0);
  chaos.faults = faultnet::FaultSpec::parse("dup=0.4;reorder=0.6;seed=13");
  core::MonitoringPipeline noisy(t, chaos);
  noisy.run(249);

  // The faults really fired...
  const auto injected = [&](const char* kind) {
    return noisy.metrics()
        .value("resmon_faultnet_injected_total", {{"fault", kind}})
        .value_or(0.0);
  };
  EXPECT_GT(injected("duplicate"), 0.0);
  EXPECT_GT(injected("reorder"), 0.0);

  // ...and changed nothing observable.
  const Matrix expected = golden.forecast_all(1);
  const Matrix actual = noisy.forecast_all(1);
  for (std::size_t i = 0; i < t.num_nodes(); ++i) {
    for (std::size_t r = 0; r < t.num_resources(); ++r) {
      EXPECT_EQ(expected(i, r), actual(i, r)) << "node " << i;
    }
  }
  EXPECT_DOUBLE_EQ(golden.rmse_at(1), noisy.rmse_at(1));
}

TEST(PipelineChaos, CorruptedFramesAreCrcRejectedNeverFatal) {
  const trace::InMemoryTrace t =
      testing::make_golden_trace("google", 12, 200, 12);

  core::PipelineOptions o = lossy_options(0.0, 0);
  o.faults = faultnet::FaultSpec::parse("corrupt=0.05;seed=7");
  core::MonitoringPipeline pipeline(t, o);
  pipeline.run(200);
  EXPECT_TRUE(pipeline.done());

  // Every corrupted frame was caught by the decoder's CRC check and
  // surfaced as a counted reject, not a crash or a poisoned sample.
  const double rejects =
      pipeline.metrics()
          .value("resmon_faultnet_crc_rejects_total")
          .value_or(0.0);
  const double injected =
      pipeline.metrics()
          .value("resmon_faultnet_injected_total", {{"fault", "corrupt"}})
          .value_or(0.0);
  EXPECT_GT(rejects, 0.0);
  EXPECT_EQ(rejects, injected);

  const Matrix f = pipeline.forecast_all(1);
  for (std::size_t i = 0; i < t.num_nodes(); ++i) {
    for (std::size_t r = 0; r < t.num_resources(); ++r) {
      EXPECT_TRUE(std::isfinite(f(i, r)));
    }
  }
}

TEST(PipelineChaos, StallAndPartitionWindowsDegradeToSampleAndHold) {
  const trace::InMemoryTrace t =
      testing::make_golden_trace("google", 10, 150, 13);

  core::PipelineOptions o = lossy_options(0.0, 0);
  o.faults =
      faultnet::FaultSpec::parse("stall=60-80;partition=100-120;nodes=2,5");
  core::MonitoringPipeline pipeline(t, o);
  pipeline.run(150);
  EXPECT_TRUE(pipeline.done());
  const Matrix f = pipeline.forecast_all(1);
  for (std::size_t i = 0; i < t.num_nodes(); ++i) {
    for (std::size_t r = 0; r < t.num_resources(); ++r) {
      EXPECT_TRUE(std::isfinite(f(i, r)));
    }
  }
}

TEST(PipelineFailures, DroppedInitialMeasurementsDelayClusteringSafely) {
  // With 90% loss the store may take a while to become complete; the
  // pipeline must keep collecting without throwing and eventually cluster.
  const trace::InMemoryTrace t =
      testing::make_golden_trace("google", 10, 200, 8);
  core::MonitoringPipeline pipeline(t, lossy_options(0.9, 0));
  pipeline.run(200);
  EXPECT_TRUE(pipeline.done());
}

}  // namespace
}  // namespace resmon
