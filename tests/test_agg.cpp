// Aggregator-tier tests: shard partition math, the golden-trace
// bit-identity guarantee (a two-tier fleet — root + 2 aggregators — must
// produce byte-identical forecasts and RMSE to a single-tier controller
// fronting the same agents), shard-hello rejection semantics, and the
// compaction accounting.
//
// All fleets run over real loopback TCP in one process; staleness clocks
// are ManualClocks, so nothing here depends on wall time.
#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <cstdint>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "agg/aggregator.hpp"
#include "collect/fleet_collector.hpp"
#include "core/pipeline.hpp"
#include "golden_fixture.hpp"
#include "net/agent.hpp"
#include "net/controller.hpp"
#include "net/socket.hpp"
#include "obs/metrics.hpp"
#include "scenario/manual_clock.hpp"

namespace resmon::agg {
namespace {

TEST(Agg, ShardRangePartitionsEveryNodeExactlyOnce) {
  for (std::size_t nodes : {1u, 2u, 5u, 6u, 7u, 64u, 97u}) {
    for (std::size_t shards : {1u, 2u, 3u, 5u, 8u}) {
      if (shards > nodes) continue;
      std::vector<int> owners(nodes, 0);
      std::size_t expected_first = 0;
      for (std::size_t s = 0; s < shards; ++s) {
        const ShardRange r = shard_range(nodes, shards, s);
        EXPECT_EQ(r.first_node, expected_first)
            << nodes << "/" << shards << " shard " << s;
        EXPECT_GE(r.num_nodes, nodes / shards);
        EXPECT_LE(r.num_nodes, nodes / shards + 1);
        for (std::size_t n = r.first_node; n < r.first_node + r.num_nodes;
             ++n) {
          ++owners[n];
        }
        expected_first = r.first_node + r.num_nodes;
      }
      EXPECT_EQ(expected_first, nodes);
      for (std::size_t n = 0; n < nodes; ++n) {
        EXPECT_EQ(owners[n], 1) << nodes << "/" << shards << " node " << n;
      }
    }
  }
}

core::PipelineOptions pipeline_options() {
  core::PipelineOptions popts;
  popts.max_frequency = 0.3;
  popts.num_clusters = 2;
  popts.forecaster = forecast::ForecasterKind::kSampleHold;
  popts.schedule = {.initial_steps = 10, .retrain_interval = 50};
  popts.seed = 7;
  return popts;
}

/// Complete every agent's hello against `collector`: connects block in
/// helper threads while the main thread (which owns the collector) pumps.
/// The loop waits on collector-side state only — agent objects are touched
/// again strictly after the joins.
void connect_all(net::Controller& collector,
                 const std::vector<net::Agent*>& agents) {
  std::vector<std::thread> connectors;
  connectors.reserve(agents.size());
  for (net::Agent* agent : agents) {
    connectors.emplace_back([agent] { agent->connect(); });
  }
  EXPECT_TRUE(collector.wait_for_agents(agents.size(), 10000));
  for (std::thread& th : connectors) th.join();
}

/// Complete a shard hello: connect_upstream blocks until the root pumps
/// the ack, so it runs on a helper thread and the root pumps until the
/// thread's done flag (not the aggregator's own state, which would race).
void connect_upstream_pumped(Aggregator& agg, net::Controller& root) {
  std::atomic<bool> done{false};
  std::thread connector([&] {
    agg.connect_upstream();
    done.store(true, std::memory_order_release);
  });
  while (!done.load(std::memory_order_acquire)) root.pump_idle(10);
  connector.join();
  EXPECT_TRUE(agg.upstream_connected());
}

/// Drive a single-tier socket fleet over `trace` and return the pipeline.
std::unique_ptr<core::MonitoringPipeline> run_single_tier(
    const trace::InMemoryTrace& trace, std::size_t slots) {
  net::ControllerOptions copts;
  copts.num_nodes = trace.num_nodes();
  copts.num_resources = trace.num_resources();
  net::Controller root(net::Socket::listen_tcp("127.0.0.1", 0), copts);

  const auto policy =
      collect::make_policy_factory(collect::PolicyKind::kAdaptive, 0.3);
  std::vector<std::unique_ptr<net::Agent>> agents;
  std::vector<net::Agent*> handles;
  for (std::uint32_t node = 0; node < trace.num_nodes(); ++node) {
    net::AgentOptions aopts;
    aopts.port = root.port();
    aopts.node = node;
    aopts.num_resources = static_cast<std::uint32_t>(trace.num_resources());
    agents.push_back(std::make_unique<net::Agent>(aopts, policy()));
    handles.push_back(agents.back().get());
  }
  connect_all(root, handles);

  auto pipeline = std::make_unique<core::MonitoringPipeline>(
      trace, pipeline_options(), core::ExternalCollection{});
  for (std::size_t t = 0; t < slots; ++t) {
    for (std::uint32_t node = 0; node < trace.num_nodes(); ++node) {
      agents[node]->observe(t, trace.measurement(node, t));
    }
    auto messages = root.collect_slot(t, 10000);
    EXPECT_TRUE(messages.has_value()) << "single-tier slot " << t;
    pipeline->step_external(*messages);
  }
  return pipeline;
}

/// Drive the same fleet through a root + `num_shards` aggregators.
std::unique_ptr<core::MonitoringPipeline> run_two_tier(
    const trace::InMemoryTrace& trace, std::size_t slots,
    std::size_t num_shards, std::uint64_t* summaries_out = nullptr) {
  net::ControllerOptions copts;
  copts.num_nodes = trace.num_nodes();
  copts.num_resources = trace.num_resources();
  copts.num_shards = num_shards;
  net::Controller root(net::Socket::listen_tcp("127.0.0.1", 0), copts);

  std::vector<std::unique_ptr<Aggregator>> aggs;
  for (std::size_t shard = 0; shard < num_shards; ++shard) {
    const ShardRange range =
        shard_range(trace.num_nodes(), num_shards, shard);
    AggregatorOptions aopts;
    aopts.shard = shard;
    aopts.first_node = range.first_node;
    aopts.num_nodes = range.num_nodes;
    aopts.num_resources = trace.num_resources();
    aopts.upstream_port = root.port();
    aggs.push_back(std::make_unique<Aggregator>(
        net::Socket::listen_tcp("127.0.0.1", 0), aopts));
    connect_upstream_pumped(*aggs.back(), root);
  }
  EXPECT_TRUE(root.wait_for_shards(num_shards, 10000));

  const auto policy =
      collect::make_policy_factory(collect::PolicyKind::kAdaptive, 0.3);
  std::vector<std::unique_ptr<net::Agent>> agents;
  std::vector<std::vector<net::Agent*>> shard_handles(num_shards);
  for (std::uint32_t node = 0; node < trace.num_nodes(); ++node) {
    std::size_t shard = 0;
    while (true) {
      const ShardRange r = shard_range(trace.num_nodes(), num_shards, shard);
      if (node >= r.first_node && node < r.first_node + r.num_nodes) break;
      ++shard;
    }
    net::AgentOptions aopts;
    aopts.port = aggs[shard]->port();
    aopts.node = node;
    aopts.num_resources = static_cast<std::uint32_t>(trace.num_resources());
    agents.push_back(std::make_unique<net::Agent>(aopts, policy()));
    shard_handles[shard].push_back(agents.back().get());
  }
  for (std::size_t shard = 0; shard < num_shards; ++shard) {
    connect_all(aggs[shard]->downstream(), shard_handles[shard]);
  }

  auto pipeline = std::make_unique<core::MonitoringPipeline>(
      trace, pipeline_options(), core::ExternalCollection{});
  for (std::size_t t = 0; t < slots; ++t) {
    for (std::uint32_t node = 0; node < trace.num_nodes(); ++node) {
      agents[node]->observe(t, trace.measurement(node, t));
    }
    for (auto& agg : aggs) {
      EXPECT_TRUE(agg->forward_slot(t, 10000)) << "shard slot " << t;
    }
    auto messages = root.collect_slot(t, 10000);
    EXPECT_TRUE(messages.has_value()) << "two-tier slot " << t;
    pipeline->step_external(*messages);
  }
  if (summaries_out != nullptr) *summaries_out = root.summaries_received();
  return pipeline;
}

void expect_bit_identical(const Matrix& a, const Matrix& b) {
  ASSERT_EQ(a.data().size(), b.data().size());
  for (std::size_t i = 0; i < a.data().size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a.data()[i]),
              std::bit_cast<std::uint64_t>(b.data()[i]))
        << "element " << i;
  }
}

TEST(Agg, TwoTierGoldenTraceIsBitIdenticalToSingleTier) {
  constexpr std::size_t kSlots = 40;
  const trace::InMemoryTrace trace =
      resmon::testing::make_golden_trace("alibaba", 6, kSlots + 8, 21);

  auto single = run_single_tier(trace, kSlots);
  std::uint64_t summaries = 0;
  auto two_tier = run_two_tier(trace, kSlots, 2, &summaries);

  // The root consumed one summary per shard per slot, never a direct frame.
  EXPECT_EQ(summaries, 2 * kSlots);

  // Byte-identical forecasts at several horizons, and bit-identical RMSE:
  // the summaries carried every measurement bit-exactly and in node order,
  // so the pipelines saw literally the same inputs.
  for (std::size_t h : {1u, 4u, 8u}) {
    expect_bit_identical(single->forecast_all(h), two_tier->forecast_all(h));
    EXPECT_EQ(std::bit_cast<std::uint64_t>(single->rmse_at(h)),
              std::bit_cast<std::uint64_t>(two_tier->rmse_at(h)))
        << "h=" << h;
  }
  EXPECT_TRUE(single->central_store().complete());
  EXPECT_TRUE(two_tier->central_store().complete());
}

TEST(Agg, ShardHelloToSingleTierRootIsTerminallyRejected) {
  net::ControllerOptions copts;
  copts.num_nodes = 4;
  copts.num_resources = 1;  // num_shards stays 0: single-tier
  net::Controller root(net::Socket::listen_tcp("127.0.0.1", 0), copts);

  AggregatorOptions aopts;
  aopts.shard = 0;
  aopts.first_node = 0;
  aopts.num_nodes = 2;
  aopts.num_resources = 1;
  aopts.upstream_port = root.port();
  Aggregator agg(net::Socket::listen_tcp("127.0.0.1", 0), aopts);

  std::string error;
  std::atomic<bool> done{false};
  std::thread connector([&] {
    try {
      agg.connect_upstream();
    } catch (const net::SocketError& e) {
      error = e.what();
    }
    done.store(true, std::memory_order_release);
  });
  // Pump the root until the rejection propagated (the done flag, not the
  // error string the connector thread is writing); the handshake needs
  // only a few round-trips.
  for (int rounds = 0;
       rounds < 1000 && !done.load(std::memory_order_acquire); ++rounds) {
    root.pump_idle(10);
  }
  connector.join();
  EXPECT_FALSE(agg.upstream_connected());
  EXPECT_NE(error.find("single-tier"), std::string::npos) << error;
  EXPECT_EQ(root.connected_shards(), 0u);
}

TEST(Agg, VersionSkewedShardHelloIsRejectedNamingBothVersions) {
  net::ControllerOptions copts;
  copts.num_nodes = 4;
  copts.num_resources = 1;
  copts.num_shards = 2;
  net::Controller root(net::Socket::listen_tcp("127.0.0.1", 0), copts);

  // Hand-roll the handshake so the hello can claim protocol v2.
  net::Socket sock = net::Socket::connect_tcp("127.0.0.1", root.port(), 5000);
  ASSERT_TRUE(sock.write_all(
      net::wire::encode(net::wire::ShardHelloFrame{
          .shard = 0, .first_node = 0, .num_nodes = 2, .num_resources = 1,
          .protocol = 2}),
      5000));
  net::wire::FrameDecoder decoder;
  std::optional<net::wire::Frame> frame;
  for (int rounds = 0; rounds < 1000 && !frame; ++rounds) {
    root.pump_idle(10);
    if (!sock.wait_readable(10)) continue;
    std::uint8_t buf[256];
    std::size_t n = 0;
    if (sock.read_some(buf, n) == net::IoStatus::kOk) {
      ASSERT_TRUE(decoder.feed({buf, n}));
      frame = decoder.next();
    }
  }
  ASSERT_TRUE(frame.has_value());
  const auto& ack = std::get<net::wire::HelloAckFrame>(*frame);
  EXPECT_FALSE(ack.accepted);
  EXPECT_EQ(ack.reason, static_cast<std::uint8_t>(
                            net::wire::HelloReject::kVersionMismatch));
  // The ack names the root's own protocol version, so the rejected peer
  // can log both sides of the skew.
  EXPECT_EQ(ack.speaker_version, net::wire::kProtocolVersion);
  EXPECT_EQ(root.connected_shards(), 0u);
}

TEST(Agg, CompactionAccountingCountsFramesInPerFrameOut) {
  constexpr std::size_t kSlots = 12;
  const trace::InMemoryTrace trace =
      resmon::testing::make_golden_trace("alibaba", 4, kSlots + 8, 3);

  net::ControllerOptions copts;
  copts.num_nodes = trace.num_nodes();
  copts.num_resources = trace.num_resources();
  copts.num_shards = 1;
  net::Controller root(net::Socket::listen_tcp("127.0.0.1", 0), copts);

  obs::MetricsRegistry agg_registry;
  AggregatorOptions aopts;
  aopts.shard = 0;
  aopts.first_node = 0;
  aopts.num_nodes = trace.num_nodes();
  aopts.num_resources = trace.num_resources();
  aopts.upstream_port = root.port();
  aopts.status_every_slots = 4;
  aopts.metrics = &agg_registry;
  Aggregator agg(net::Socket::listen_tcp("127.0.0.1", 0), aopts);
  connect_upstream_pumped(agg, root);

  const auto policy =
      collect::make_policy_factory(collect::PolicyKind::kAlways, 1.0);
  std::vector<std::unique_ptr<net::Agent>> agents;
  std::vector<net::Agent*> handles;
  for (std::uint32_t node = 0; node < trace.num_nodes(); ++node) {
    net::AgentOptions opts;
    opts.port = agg.port();
    opts.node = node;
    opts.num_resources = static_cast<std::uint32_t>(trace.num_resources());
    agents.push_back(std::make_unique<net::Agent>(opts, policy()));
    handles.push_back(agents.back().get());
  }
  connect_all(agg.downstream(), handles);

  for (std::size_t t = 0; t < kSlots; ++t) {
    for (std::uint32_t node = 0; node < trace.num_nodes(); ++node) {
      agents[node]->observe(t, trace.measurement(node, t));
    }
    ASSERT_TRUE(agg.forward_slot(t, 10000));
    ASSERT_TRUE(root.collect_slot(t, 10000).has_value());
  }

  EXPECT_EQ(agg.forwarded_slots(), kSlots);
  // kAlways: every agent transmitted every slot, so each summary carried
  // exactly N measurements.
  EXPECT_EQ(agg.forwarded_measurements(), kSlots * trace.num_nodes());
  // status_every_slots = 4 over 12 slots -> 3 censuses.
  EXPECT_EQ(agg.status_frames(), 3u);
  EXPECT_EQ(root.summaries_received(), kSlots);
  EXPECT_EQ(root.summary_measurements(), kSlots * trace.num_nodes());
  // Compaction: (N hellos + N*slots measurements) agent frames in, against
  // (slots summaries + 3 censuses) upstream frames out — comfortably > 1
  // for N = 4, and exported as the gauge.
  const std::string text = agg_registry.render_text();
  EXPECT_NE(text.find("resmon_agg_forwarded_slots_total{shard=\"0\"} 12"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("resmon_agg_compaction_ratio"), std::string::npos);
}

}  // namespace
}  // namespace resmon::agg
