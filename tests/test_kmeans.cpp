#include "cluster/kmeans.hpp"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace resmon::cluster {
namespace {

/// Three well-separated 2-D blobs of `per_blob` points each.
Matrix make_blobs(std::size_t per_blob, Rng& rng) {
  const double centers[3][2] = {{0.0, 0.0}, {10.0, 10.0}, {-10.0, 10.0}};
  Matrix points(3 * per_blob, 2);
  for (std::size_t b = 0; b < 3; ++b) {
    for (std::size_t i = 0; i < per_blob; ++i) {
      points(b * per_blob + i, 0) = centers[b][0] + rng.normal(0.0, 0.3);
      points(b * per_blob + i, 1) = centers[b][1] + rng.normal(0.0, 0.3);
    }
  }
  return points;
}

TEST(KMeans, RecoversWellSeparatedBlobs) {
  Rng rng(1);
  const Matrix points = make_blobs(20, rng);
  const KMeansResult r = kmeans(points, 3, rng);

  // All points of one blob share one label, and labels differ across blobs.
  std::set<std::size_t> labels;
  for (std::size_t b = 0; b < 3; ++b) {
    const std::size_t label = r.assignment[b * 20];
    labels.insert(label);
    for (std::size_t i = 0; i < 20; ++i) {
      EXPECT_EQ(r.assignment[b * 20 + i], label) << "blob " << b;
    }
  }
  EXPECT_EQ(labels.size(), 3u);
}

TEST(KMeans, CentroidsNearBlobCenters) {
  Rng rng(2);
  const Matrix points = make_blobs(30, rng);
  const KMeansResult r = kmeans(points, 3, rng);
  // Each true center must be within 1.0 of some centroid.
  const double centers[3][2] = {{0.0, 0.0}, {10.0, 10.0}, {-10.0, 10.0}};
  for (const auto& c : centers) {
    double best = 1e9;
    for (std::size_t j = 0; j < 3; ++j) {
      const double d2 = (r.centroids(j, 0) - c[0]) * (r.centroids(j, 0) - c[0]) +
                        (r.centroids(j, 1) - c[1]) * (r.centroids(j, 1) - c[1]);
      best = std::min(best, d2);
    }
    EXPECT_LT(best, 1.0);
  }
}

TEST(KMeans, KEqualsOneGivesGlobalMean) {
  Matrix points{{0.0}, {2.0}, {4.0}};
  Rng rng(3);
  const KMeansResult r = kmeans(points, 1, rng);
  EXPECT_NEAR(r.centroids(0, 0), 2.0, 1e-12);
  EXPECT_NEAR(r.inertia, 8.0, 1e-12);
}

TEST(KMeans, KEqualsNIsZeroInertiaOnDistinctPoints) {
  Matrix points{{0.0}, {5.0}, {9.0}, {13.0}};
  Rng rng(4);
  const KMeansResult r = kmeans(points, 4, rng);
  EXPECT_NEAR(r.inertia, 0.0, 1e-9);
  std::set<std::size_t> labels(r.assignment.begin(), r.assignment.end());
  EXPECT_EQ(labels.size(), 4u);
}

TEST(KMeans, AllIdenticalPointsAreHandled) {
  Matrix points(6, 2);
  for (std::size_t i = 0; i < 6; ++i) {
    points(i, 0) = 1.0;
    points(i, 1) = 2.0;
  }
  Rng rng(5);
  const KMeansResult r = kmeans(points, 3, rng);
  EXPECT_LE(r.inertia, 1e-12);
}

TEST(KMeans, ValidatesArguments) {
  Matrix points{{0.0}, {1.0}};
  Rng rng(6);
  EXPECT_THROW(kmeans(points, 0, rng), InvalidArgument);
  EXPECT_THROW(kmeans(points, 3, rng), InvalidArgument);
  EXPECT_THROW(kmeans(Matrix(), 1, rng), InvalidArgument);
}

TEST(KMeans, InertiaNeverIncreasesWithLargerK) {
  Rng rng(7);
  Matrix points(40, 1);
  for (std::size_t i = 0; i < 40; ++i) points(i, 0) = rng.uniform();
  double prev = 1e18;
  for (const std::size_t k : {1u, 2u, 4u, 8u, 16u}) {
    Rng local(99);
    const KMeansResult r = kmeans(points, k, local, {.restarts = 4});
    EXPECT_LE(r.inertia, prev + 1e-9) << "k = " << k;
    prev = r.inertia;
  }
}

TEST(KMeans, AssignmentIsNearestCentroid) {
  Rng rng(8);
  Matrix points(25, 2);
  for (std::size_t i = 0; i < 25; ++i) {
    points(i, 0) = rng.uniform();
    points(i, 1) = rng.uniform();
  }
  const KMeansResult r = kmeans(points, 4, rng);
  for (std::size_t i = 0; i < 25; ++i) {
    const double own =
        squared_distance(points.row(i), r.centroids.row(r.assignment[i]));
    for (std::size_t j = 0; j < 4; ++j) {
      EXPECT_LE(own,
                squared_distance(points.row(i), r.centroids.row(j)) + 1e-9);
    }
  }
}

TEST(CentroidsOf, ComputesMemberMeans) {
  Matrix points{{0.0}, {2.0}, {10.0}};
  const std::vector<std::size_t> assignment{0, 0, 1};
  const Matrix c = centroids_of(points, assignment, 2);
  EXPECT_NEAR(c(0, 0), 1.0, 1e-12);
  EXPECT_NEAR(c(1, 0), 10.0, 1e-12);
}

TEST(CentroidsOf, ReportsEmptyClusters) {
  Matrix points{{1.0}, {2.0}};
  const std::vector<std::size_t> assignment{0, 0};
  std::vector<bool> empty;
  const Matrix c = centroids_of(points, assignment, 3, &empty);
  EXPECT_FALSE(empty[0]);
  EXPECT_TRUE(empty[1]);
  EXPECT_TRUE(empty[2]);
  EXPECT_DOUBLE_EQ(c(1, 0), 0.0);
}

TEST(InertiaOf, MatchesKMeansInertia) {
  Rng rng(9);
  Matrix points(30, 2);
  for (std::size_t i = 0; i < 30; ++i) {
    points(i, 0) = rng.uniform();
    points(i, 1) = rng.uniform();
  }
  const KMeansResult r = kmeans(points, 3, rng);
  EXPECT_NEAR(inertia_of(points, r.assignment, r.centroids), r.inertia,
              1e-9);
}

// Property sweep over k: every cluster index returned is < k and every
// cluster is non-empty (the empty-cluster repair invariant).
class KMeansSweepTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(KMeansSweepTest, LabelsInRangeAndNoEmptyClusters) {
  const std::size_t k = GetParam();
  Rng rng(k);
  Matrix points(50, 3);
  for (std::size_t i = 0; i < 50; ++i) {
    for (std::size_t c = 0; c < 3; ++c) points(i, c) = rng.uniform();
  }
  const KMeansResult r = kmeans(points, k, rng);
  std::vector<std::size_t> counts(k, 0);
  for (const std::size_t a : r.assignment) {
    ASSERT_LT(a, k);
    ++counts[a];
  }
  for (std::size_t j = 0; j < k; ++j) {
    EXPECT_GT(counts[j], 0u) << "empty cluster " << j << " with k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Ks, KMeansSweepTest,
                         ::testing::Values(1, 2, 3, 5, 10, 25, 50));

}  // namespace
}  // namespace resmon::cluster
