// Wire protocol tests: encode/decode identity, incremental decoding, and
// the robustness sweep from the protocol's threat model — truncation at
// every byte boundary, corrupted CRCs, wrong magic, future versions, and
// headers announcing absurd payload sizes (which must not allocate).
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <random>
#include <vector>

#include "net/wire.hpp"

namespace resmon::net::wire {
namespace {

transport::MeasurementMessage sample_message(std::size_t node,
                                             std::size_t step,
                                             std::vector<double> values) {
  transport::MeasurementMessage m;
  m.node = node;
  m.step = step;
  m.values = std::move(values);
  return m;
}

/// Decode exactly one frame from a complete buffer, expecting success.
Frame decode_one(const std::vector<std::uint8_t>& bytes) {
  FrameDecoder dec;
  EXPECT_TRUE(dec.feed(bytes));
  std::optional<Frame> frame = dec.next();
  EXPECT_TRUE(frame.has_value());
  EXPECT_TRUE(dec.finish());
  return std::move(*frame);
}

TEST(Wire, MeasurementRoundTripIsExactIdentity) {
  const transport::MeasurementMessage m =
      sample_message(7, 123456789012345ull, {0.25, -1e308, 3.5e-320});
  const Frame frame = decode_one(encode(m));
  const auto& got = std::get<transport::MeasurementMessage>(frame);
  EXPECT_EQ(got.node, m.node);
  EXPECT_EQ(got.step, m.step);
  ASSERT_EQ(got.values.size(), m.values.size());
  for (std::size_t i = 0; i < m.values.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(got.values[i]),
              std::bit_cast<std::uint64_t>(m.values[i]));
  }
}

TEST(Wire, RoundTripPreservesNonFiniteAndSignedZeroBitPatterns) {
  const transport::MeasurementMessage m = sample_message(
      0, 0,
      {std::numeric_limits<double>::quiet_NaN(),
       std::numeric_limits<double>::infinity(),
       -std::numeric_limits<double>::infinity(), -0.0,
       std::numeric_limits<double>::denorm_min()});
  const Frame frame = decode_one(encode(m));
  const auto& got = std::get<transport::MeasurementMessage>(frame);
  ASSERT_EQ(got.values.size(), m.values.size());
  for (std::size_t i = 0; i < m.values.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(got.values[i]),
              std::bit_cast<std::uint64_t>(m.values[i]))
        << "value " << i;
  }
}

TEST(Wire, RandomizedMessagesRoundTripAtEveryDimension) {
  std::mt19937_64 rng(20260806);
  std::uniform_real_distribution<double> value(-1e6, 1e6);
  for (std::size_t d = 0; d <= 32; ++d) {
    transport::MeasurementMessage m;
    m.node = static_cast<std::size_t>(rng() % 10000);
    m.step = static_cast<std::size_t>(rng());
    for (std::size_t i = 0; i < d; ++i) m.values.push_back(value(rng));

    const std::vector<std::uint8_t> bytes = encode(m);
    EXPECT_EQ(bytes.size(), m.wire_size()) << "d=" << d;
    const Frame frame = decode_one(bytes);
    const auto& got = std::get<transport::MeasurementMessage>(frame);
    EXPECT_EQ(got.node, m.node);
    EXPECT_EQ(got.step, m.step);
    EXPECT_EQ(got.values, m.values) << "d=" << d;
  }
}

TEST(Wire, ControlFramesRoundTrip) {
  const auto hello = std::get<HelloFrame>(
      decode_one(encode(HelloFrame{.node = 42, .num_resources = 3})));
  EXPECT_EQ(hello.node, 42u);
  EXPECT_EQ(hello.num_resources, 3u);

  const auto ack = std::get<HelloAckFrame>(decode_one(
      encode(HelloAckFrame{.node = 42, .accepted = false, .reason = 3})));
  EXPECT_EQ(ack.node, 42u);
  EXPECT_FALSE(ack.accepted);
  EXPECT_EQ(ack.reason, 3u);

  const auto hb = std::get<HeartbeatFrame>(decode_one(
      encode(HeartbeatFrame{.node = 6, .step = (1ull << 40) + 9})));
  EXPECT_EQ(hb.node, 6u);
  EXPECT_EQ(hb.step, (1ull << 40) + 9);
}

TEST(Wire, DecoderHandlesByteAtATimeMultiFrameStreams) {
  std::vector<std::uint8_t> stream;
  const transport::MeasurementMessage m0 = sample_message(1, 10, {0.5});
  const transport::MeasurementMessage m1 = sample_message(2, 11, {1.5, 2.5});
  for (const auto& bytes :
       {encode(HelloFrame{.node = 1, .num_resources = 1}), encode(m0),
        encode(HeartbeatFrame{.node = 1, .step = 12}), encode(m1)}) {
    stream.insert(stream.end(), bytes.begin(), bytes.end());
  }

  FrameDecoder dec;
  std::vector<Frame> frames;
  for (const std::uint8_t byte : stream) {
    ASSERT_TRUE(dec.feed({&byte, 1}));
    while (std::optional<Frame> f = dec.next()) frames.push_back(*f);
  }
  EXPECT_TRUE(dec.finish());
  ASSERT_EQ(frames.size(), 4u);
  EXPECT_TRUE(std::holds_alternative<HelloFrame>(frames[0]));
  EXPECT_EQ(std::get<transport::MeasurementMessage>(frames[1]).step, 10u);
  EXPECT_EQ(std::get<HeartbeatFrame>(frames[2]).step, 12u);
  EXPECT_EQ(std::get<transport::MeasurementMessage>(frames[3]).values,
            m1.values);
  EXPECT_EQ(dec.frames_decoded(), 4u);
  EXPECT_EQ(dec.bytes_consumed(), stream.size());
}

TEST(Wire, TruncationAtEveryByteBoundaryIsDetected) {
  const std::vector<std::uint8_t> bytes =
      encode(sample_message(3, 17, {1.0, 2.0, 3.0}));
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    FrameDecoder dec;
    ASSERT_TRUE(dec.feed({bytes.data(), cut})) << "cut=" << cut;
    EXPECT_FALSE(dec.next().has_value()) << "cut=" << cut;
    if (cut == 0) {
      EXPECT_TRUE(dec.finish());  // clean end between frames
    } else {
      EXPECT_FALSE(dec.finish()) << "cut=" << cut;
      EXPECT_EQ(dec.error(), WireError::kTruncated) << "cut=" << cut;
    }
  }
}

TEST(Wire, FlippedCrcFieldRejectsTheFrame) {
  std::vector<std::uint8_t> bytes = encode(sample_message(1, 2, {4.0}));
  bytes[12] ^= 0x01;  // CRC lives at header bytes [12, 16)
  FrameDecoder dec;
  EXPECT_FALSE(dec.feed(bytes));
  EXPECT_EQ(dec.error(), WireError::kCrcMismatch);
  EXPECT_STREQ(wire_error_name(dec.error()), "crc mismatch");
}

TEST(Wire, EveryCorruptedPayloadByteIsCaughtByTheCrc) {
  const std::vector<std::uint8_t> clean = encode(sample_message(1, 2, {4.0}));
  for (std::size_t i = kHeaderSize; i < clean.size(); ++i) {
    std::vector<std::uint8_t> bytes = clean;
    bytes[i] ^= 0x40;
    FrameDecoder dec;
    EXPECT_FALSE(dec.feed(bytes)) << "byte " << i;
    EXPECT_EQ(dec.error(), WireError::kCrcMismatch) << "byte " << i;
  }
}

TEST(Wire, WrongMagicIsRejected) {
  std::vector<std::uint8_t> bytes = encode(HeartbeatFrame{.node = 0});
  bytes[0] ^= 0xFF;
  FrameDecoder dec;
  EXPECT_FALSE(dec.feed(bytes));
  EXPECT_EQ(dec.error(), WireError::kBadMagic);
}

TEST(Wire, FutureProtocolVersionIsRejected) {
  std::vector<std::uint8_t> bytes = encode(HeartbeatFrame{.node = 0});
  bytes[4] = kProtocolVersion + 1;
  FrameDecoder dec;
  EXPECT_FALSE(dec.feed(bytes));
  EXPECT_EQ(dec.error(), WireError::kUnsupportedVersion);
}

TEST(Wire, UnknownFrameTypeIsRejected) {
  std::vector<std::uint8_t> bytes = encode(HeartbeatFrame{.node = 0});
  bytes[5] = 0x7F;
  FrameDecoder dec;
  EXPECT_FALSE(dec.feed(bytes));
  EXPECT_EQ(dec.error(), WireError::kUnknownFrameType);
}

TEST(Wire, PayloadBombIsRejectedFromTheHeaderAlone) {
  // A hostile header announcing a 4 GiB payload must be rejected as soon as
  // the 16 header bytes are in — before any payload is buffered, so a
  // remote peer cannot drive controller memory with a single small write.
  std::vector<std::uint8_t> bytes = encode(HeartbeatFrame{.node = 0});
  bytes.resize(kHeaderSize);
  bytes[8] = bytes[9] = bytes[10] = bytes[11] = 0xFF;  // payload_len field
  FrameDecoder dec;
  EXPECT_FALSE(dec.feed(bytes));
  EXPECT_EQ(dec.error(), WireError::kOversizedPayload);
  EXPECT_LE(dec.buffered_bytes(), kHeaderSize);
}

TEST(Wire, PayloadJustOverTheDecoderLimitIsRejected) {
  const transport::MeasurementMessage m = sample_message(0, 0, {1.0, 2.0});
  const std::vector<std::uint8_t> bytes = encode(m);
  FrameDecoder tight(measurement_payload_size(m.values.size()) - 1);
  EXPECT_FALSE(tight.feed(bytes));
  EXPECT_EQ(tight.error(), WireError::kOversizedPayload);

  FrameDecoder exact(measurement_payload_size(m.values.size()));
  EXPECT_TRUE(exact.feed(bytes));
  EXPECT_TRUE(exact.next().has_value());
}

TEST(Wire, InconsistentMeasurementCountIsMalformed) {
  // Patch the in-payload count field and fix up the CRC so only the
  // payload-length consistency check can catch it.
  std::vector<std::uint8_t> bytes = encode(sample_message(1, 2, {4.0, 5.0}));
  const std::size_t count_offset = kHeaderSize + 12;
  bytes[count_offset] += 1;  // claims 3 doubles; payload only holds 2
  const std::uint32_t crc =
      crc32({bytes.data() + kHeaderSize, bytes.size() - kHeaderSize});
  bytes[12] = static_cast<std::uint8_t>(crc);
  bytes[13] = static_cast<std::uint8_t>(crc >> 8);
  bytes[14] = static_cast<std::uint8_t>(crc >> 16);
  bytes[15] = static_cast<std::uint8_t>(crc >> 24);

  FrameDecoder dec;
  EXPECT_FALSE(dec.feed(bytes));
  EXPECT_EQ(dec.error(), WireError::kMalformedPayload);
}

TEST(Wire, PoisonedDecoderStaysPoisoned) {
  std::vector<std::uint8_t> bad = encode(HeartbeatFrame{.node = 0});
  bad[0] ^= 0xFF;
  FrameDecoder dec;
  EXPECT_FALSE(dec.feed(bad));

  const std::vector<std::uint8_t> good = encode(HeartbeatFrame{.node = 1});
  EXPECT_FALSE(dec.feed(good));
  EXPECT_FALSE(dec.next().has_value());
  EXPECT_FALSE(dec.finish());
  EXPECT_EQ(dec.error(), WireError::kBadMagic);
}

// -- shard frames (two-tier topology) ---------------------------------------

TEST(Wire, ShardHelloRoundTrip) {
  const auto sh = std::get<ShardHelloFrame>(decode_one(
      encode(ShardHelloFrame{.shard = 3,
                             .first_node = 96,
                             .num_nodes = 32,
                             .num_resources = 2,
                             .protocol = kProtocolVersion})));
  EXPECT_EQ(sh.shard, 3u);
  EXPECT_EQ(sh.first_node, 96u);
  EXPECT_EQ(sh.num_nodes, 32u);
  EXPECT_EQ(sh.num_resources, 2u);
  EXPECT_EQ(sh.protocol, kProtocolVersion);
}

TEST(Wire, HelloAckCarriesSpeakerVersion) {
  const auto ack = std::get<HelloAckFrame>(decode_one(encode(
      HelloAckFrame{.node = 1, .accepted = false, .reason = 6,
                    .speaker_version = 9})));
  EXPECT_EQ(ack.reason, 6u);
  EXPECT_EQ(ack.speaker_version, 9u);
  // The default-constructed ack reports this build's protocol version.
  const auto dflt = std::get<HelloAckFrame>(
      decode_one(encode(HelloAckFrame{.node = 0, .accepted = true})));
  EXPECT_EQ(dflt.speaker_version, kProtocolVersion);
}

TEST(Wire, SlotSummaryRoundTripIsExactIdentity) {
  SlotSummaryFrame s;
  s.shard = 1;
  s.step = (1ull << 41) + 17;
  s.degraded = 2;
  s.num_resources = 3;
  s.measurements.push_back(sample_message(
      4, static_cast<std::size_t>(s.step),
      {0.25, std::numeric_limits<double>::quiet_NaN(), -0.0}));
  s.measurements.push_back(sample_message(
      5, static_cast<std::size_t>(s.step), {-1e308, 3.5e-320, 2.5}));

  const std::vector<std::uint8_t> bytes = encode(s);
  EXPECT_EQ(bytes.size(),
            frame_size(slot_summary_payload_size(2, s.num_resources)));
  const auto got = std::get<SlotSummaryFrame>(decode_one(bytes));
  EXPECT_EQ(got.shard, s.shard);
  EXPECT_EQ(got.step, s.step);
  EXPECT_EQ(got.degraded, s.degraded);
  EXPECT_EQ(got.num_resources, s.num_resources);
  ASSERT_EQ(got.measurements.size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(got.measurements[i].node, s.measurements[i].node);
    // Each decoded entry inherits the summary's step.
    EXPECT_EQ(got.measurements[i].step, static_cast<std::size_t>(s.step));
    ASSERT_EQ(got.measurements[i].values.size(), 3u);
    for (std::size_t r = 0; r < 3; ++r) {
      EXPECT_EQ(std::bit_cast<std::uint64_t>(got.measurements[i].values[r]),
                std::bit_cast<std::uint64_t>(s.measurements[i].values[r]))
          << "entry " << i << " value " << r;
    }
  }
}

TEST(Wire, EmptySlotSummaryRoundTrips) {
  // Every shard agent stayed silent this slot: the summary still travels
  // (it IS the shard's progress signal) with zero entries.
  SlotSummaryFrame s;
  s.shard = 0;
  s.step = 7;
  s.num_resources = 4;
  const auto got = std::get<SlotSummaryFrame>(decode_one(encode(s)));
  EXPECT_EQ(got.step, 7u);
  EXPECT_EQ(got.degraded, 0u);
  EXPECT_TRUE(got.measurements.empty());
}

TEST(Wire, ShardStatusRoundTrip) {
  const auto st = std::get<ShardStatusFrame>(decode_one(encode(
      ShardStatusFrame{.shard = 2, .live = 30, .stale = 1, .dead = 1})));
  EXPECT_EQ(st.shard, 2u);
  EXPECT_EQ(st.live, 30u);
  EXPECT_EQ(st.stale, 1u);
  EXPECT_EQ(st.dead, 1u);
}

TEST(Wire, ShardFrameTruncationAtEveryByteBoundaryIsDetected) {
  SlotSummaryFrame s;
  s.shard = 1;
  s.step = 9;
  s.num_resources = 2;
  s.measurements.push_back(sample_message(0, 9, {1.0, 2.0}));
  for (const auto& bytes :
       {encode(ShardHelloFrame{.shard = 0, .num_nodes = 3,
                               .num_resources = 2}),
        encode(s), encode(ShardStatusFrame{.shard = 0, .live = 3})}) {
    for (std::size_t cut = 1; cut < bytes.size(); ++cut) {
      FrameDecoder dec;
      ASSERT_TRUE(dec.feed({bytes.data(), cut})) << "cut=" << cut;
      EXPECT_FALSE(dec.next().has_value()) << "cut=" << cut;
      EXPECT_FALSE(dec.finish()) << "cut=" << cut;
      EXPECT_EQ(dec.error(), WireError::kTruncated) << "cut=" << cut;
    }
  }
}

TEST(Wire, EveryCorruptedShardFrameByteIsCaughtByTheCrc) {
  SlotSummaryFrame s;
  s.shard = 0;
  s.step = 3;
  s.num_resources = 1;
  s.measurements.push_back(sample_message(1, 3, {4.0}));
  const std::vector<std::uint8_t> clean = encode(s);
  for (std::size_t i = kHeaderSize; i < clean.size(); ++i) {
    std::vector<std::uint8_t> bytes = clean;
    bytes[i] ^= 0x40;
    FrameDecoder dec;
    EXPECT_FALSE(dec.feed(bytes)) << "byte " << i;
    EXPECT_EQ(dec.error(), WireError::kCrcMismatch) << "byte " << i;
  }
}

/// Patch a 32-bit little-endian field inside the payload and fix up the
/// header CRC, so only the structural validation can reject the frame.
std::vector<std::uint8_t> with_patched_field(std::vector<std::uint8_t> bytes,
                                             std::size_t payload_offset,
                                             std::uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    bytes[kHeaderSize + payload_offset + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(value >> (8 * i));
  }
  const std::uint32_t crc =
      crc32({bytes.data() + kHeaderSize, bytes.size() - kHeaderSize});
  for (int i = 0; i < 4; ++i) {
    bytes[12 + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(crc >> (8 * i));
  }
  return bytes;
}

TEST(Wire, HostileSlotSummaryCountIsMalformed) {
  SlotSummaryFrame s;
  s.num_resources = 2;
  s.measurements.push_back(sample_message(0, 0, {1.0, 2.0}));
  // count claims 2^31 entries; the payload holds one. The size check must
  // reject this without multiplying into an overflow.
  const std::vector<std::uint8_t> bytes =
      with_patched_field(encode(s), 20, 1u << 31);
  FrameDecoder dec;
  EXPECT_FALSE(dec.feed(bytes));
  EXPECT_EQ(dec.error(), WireError::kMalformedPayload);
}

TEST(Wire, HostileSlotSummaryDimensionIsMalformed) {
  SlotSummaryFrame s;
  s.num_resources = 2;
  s.measurements.push_back(sample_message(0, 0, {1.0, 2.0}));
  const std::vector<std::uint8_t> bytes =
      with_patched_field(encode(s), 16, 0xFFFFFFFFu);
  FrameDecoder dec;
  EXPECT_FALSE(dec.feed(bytes));
  EXPECT_EQ(dec.error(), WireError::kMalformedPayload);
}

TEST(Wire, SlotSummaryCountDimensionMismatchIsMalformed) {
  // Internally consistent-looking fields whose product disagrees with the
  // actual payload length by one entry.
  SlotSummaryFrame s;
  s.num_resources = 2;
  s.measurements.push_back(sample_message(0, 0, {1.0, 2.0}));
  s.measurements.push_back(sample_message(1, 0, {3.0, 4.0}));
  const std::vector<std::uint8_t> bytes =
      with_patched_field(encode(s), 20, 3);  // claims 3 entries, holds 2
  FrameDecoder dec;
  EXPECT_FALSE(dec.feed(bytes));
  EXPECT_EQ(dec.error(), WireError::kMalformedPayload);
}

TEST(Wire, WrongSizeShardControlPayloadsAreMalformed) {
  // Shrink each fixed-size shard frame by one payload byte (fixing length
  // field + CRC) — the per-type size check must reject it.
  for (const auto& clean :
       {encode(ShardHelloFrame{.shard = 1, .num_nodes = 2,
                               .num_resources = 1}),
        encode(ShardStatusFrame{.shard = 1, .live = 2})}) {
    std::vector<std::uint8_t> bytes = clean;
    bytes.pop_back();
    const std::uint32_t len =
        static_cast<std::uint32_t>(bytes.size() - kHeaderSize);
    for (int i = 0; i < 4; ++i) {
      bytes[8 + static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(len >> (8 * i));
    }
    const std::uint32_t crc =
        crc32({bytes.data() + kHeaderSize, bytes.size() - kHeaderSize});
    for (int i = 0; i < 4; ++i) {
      bytes[12 + static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(crc >> (8 * i));
    }
    FrameDecoder dec;
    EXPECT_FALSE(dec.feed(bytes));
    EXPECT_EQ(dec.error(), WireError::kMalformedPayload);
  }
}

TEST(Wire, FrameTypePastShardStatusIsUnknown) {
  // Type 8 is the first unassigned id of protocol v1: a build from the
  // future must be rejected as kUnknownFrameType, not misparsed.
  std::vector<std::uint8_t> bytes = encode(ShardStatusFrame{.shard = 0});
  bytes[5] = 8;
  FrameDecoder dec;
  EXPECT_FALSE(dec.feed(bytes));
  EXPECT_EQ(dec.error(), WireError::kUnknownFrameType);
}

TEST(Wire, HelloRejectNamesAreStable) {
  EXPECT_STREQ(hello_reject_name(0), "accepted");
  EXPECT_STREQ(hello_reject_name(1), "node id out of range");
  EXPECT_STREQ(hello_reject_name(6), "wire protocol version mismatch");
  EXPECT_STREQ(hello_reject_name(7),
               "shard hello to a single-tier controller");
  EXPECT_STREQ(hello_reject_name(200), "unknown reason");
}

TEST(Wire, DescribeHelloRejectNamesBothVersionsOnMismatch) {
  const std::string described = describe_hello_reject(
      static_cast<std::uint8_t>(HelloReject::kVersionMismatch), 3);
  EXPECT_NE(described.find("version mismatch"), std::string::npos);
  EXPECT_NE(described.find("v" + std::to_string(kProtocolVersion)),
            std::string::npos);
  EXPECT_NE(described.find("v3"), std::string::npos);
  // An ack from a build predating the speaker_version byte reports 0.
  const std::string legacy = describe_hello_reject(
      static_cast<std::uint8_t>(HelloReject::kVersionMismatch), 0);
  EXPECT_NE(legacy.find("unreported"), std::string::npos);
  // Non-version rejections stay a plain named reason.
  const std::string plain = describe_hello_reject(
      static_cast<std::uint8_t>(HelloReject::kDimensionMismatch), 0);
  EXPECT_EQ(plain, "reason 2: dimension mismatch");
}

TEST(Wire, Crc32MatchesTheIeeeCheckValue) {
  // The canonical check string from the CRC-32/ISO-HDLC specification.
  const std::uint8_t check[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(crc32(check), 0xCBF43926u);
  EXPECT_EQ(crc32({}), 0x00000000u);
}

}  // namespace
}  // namespace resmon::net::wire
