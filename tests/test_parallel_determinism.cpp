// Golden-trace regression for the threading model: the full pipeline on a
// seeded synthetic trace must produce bit-identical outputs at every thread
// count (PipelineOptions::num_threads ∈ {1, 2, 8}) and across repeated
// runs. Covers forecasts, RMSE metrics, cluster memberships and the
// channel's byte/message accounting, on both a reliable and a lossy/delayed
// uplink.
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "core/pipeline.hpp"
#include "golden_fixture.hpp"
#include "trace/synthetic.hpp"

namespace resmon {
namespace {

constexpr std::size_t kSteps = 400;  // golden_alibaba_trace() step count

const trace::InMemoryTrace& shared_trace() {
  return testing::golden_alibaba_trace();
}

/// Everything a pipeline run produces that downstream consumers can see.
struct RunRecord {
  std::vector<double> forecast_h1;
  std::vector<double> forecast_h4;
  std::vector<double> sampled_rmse0;
  std::vector<double> sampled_intermediate_rmse;
  std::vector<std::vector<std::size_t>> memberships;  // per view
  std::uint64_t messages_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t messages_dropped = 0;
  double avg_frequency = 0.0;
};

std::vector<double> flatten(const Matrix& m) {
  return m.data();
}

RunRecord run_pipeline(core::PipelineOptions options, std::size_t threads) {
  options.num_threads = threads;
  const trace::Trace& t = shared_trace();
  core::MonitoringPipeline p(t, options);
  RunRecord rec;
  for (std::size_t step = 0; step < kSteps; ++step) {
    p.step();
    if (!p.collector().store().complete()) continue;
    if (step % 25 == 0 && step + 1 < kSteps) {
      rec.sampled_rmse0.push_back(p.rmse_at(0));
      rec.sampled_intermediate_rmse.push_back(p.intermediate_rmse());
    }
  }
  rec.forecast_h1 = flatten(p.forecast_all(1));
  rec.forecast_h4 = flatten(p.forecast_all(4));
  for (std::size_t v = 0; v < p.num_views(); ++v) {
    rec.memberships.push_back(p.tracker(v).history(0).assignment);
  }
  rec.messages_sent = p.collector().link().messages_sent();
  rec.bytes_sent = p.collector().link().bytes_sent();
  rec.messages_dropped = p.collector().link().messages_dropped();
  rec.avg_frequency = p.collector().average_actual_frequency();
  return rec;
}

/// Bit-identical comparison: every double must match exactly, every
/// membership and counter as well.
void expect_identical(const RunRecord& a, const RunRecord& b,
                      const std::string& label) {
  ASSERT_EQ(a.forecast_h1.size(), b.forecast_h1.size()) << label;
  for (std::size_t i = 0; i < a.forecast_h1.size(); ++i) {
    ASSERT_EQ(a.forecast_h1[i], b.forecast_h1[i]) << label << " h1[" << i
                                                  << "]";
    ASSERT_EQ(a.forecast_h4[i], b.forecast_h4[i]) << label << " h4[" << i
                                                  << "]";
  }
  ASSERT_EQ(a.sampled_rmse0.size(), b.sampled_rmse0.size()) << label;
  for (std::size_t i = 0; i < a.sampled_rmse0.size(); ++i) {
    ASSERT_EQ(a.sampled_rmse0[i], b.sampled_rmse0[i])
        << label << " rmse0 sample " << i;
    ASSERT_EQ(a.sampled_intermediate_rmse[i], b.sampled_intermediate_rmse[i])
        << label << " intermediate sample " << i;
  }
  ASSERT_EQ(a.memberships, b.memberships) << label;
  EXPECT_EQ(a.messages_sent, b.messages_sent) << label;
  EXPECT_EQ(a.bytes_sent, b.bytes_sent) << label;
  EXPECT_EQ(a.messages_dropped, b.messages_dropped) << label;
  EXPECT_EQ(a.avg_frequency, b.avg_frequency) << label;
}

core::PipelineOptions base_options() {
  core::PipelineOptions o;
  o.num_clusters = 3;
  o.forecaster = forecast::ForecasterKind::kHoltWinters;
  o.schedule = {.initial_steps = 120, .retrain_interval = 96};
  o.seed = 7;
  return o;
}

TEST(ParallelDeterminism, ReliableUplinkBitIdenticalAcrossThreadCounts) {
  const RunRecord serial = run_pipeline(base_options(), 1);
  ASSERT_FALSE(serial.forecast_h1.empty());
  ASSERT_GE(serial.sampled_rmse0.size(), 10u);
  expect_identical(serial, run_pipeline(base_options(), 2), "threads=2");
  expect_identical(serial, run_pipeline(base_options(), 8), "threads=8");
}

TEST(ParallelDeterminism, RepeatedRunsAreStable) {
  const RunRecord first = run_pipeline(base_options(), 2);
  const RunRecord second = run_pipeline(base_options(), 2);
  expect_identical(first, second, "repeat threads=2");
}

TEST(ParallelDeterminism, LossyDelayedUplinkBitIdenticalAcrossThreadCounts) {
  core::PipelineOptions o = base_options();
  o.channel.drop_probability = 0.15;
  o.channel.max_delay_slots = 2;
  // channel.seed left at 0 on purpose: the pipeline derives it from the
  // pipeline seed, and the derivation must be thread-count independent too.
  const RunRecord serial = run_pipeline(o, 1);
  EXPECT_GT(serial.messages_dropped, 0u);
  expect_identical(serial, run_pipeline(o, 2), "lossy threads=2");
  expect_identical(serial, run_pipeline(o, 8), "lossy threads=8");
}

TEST(ParallelDeterminism, TemporalWindowPathBitIdentical) {
  core::PipelineOptions o = base_options();
  o.temporal_window = 4;
  expect_identical(run_pipeline(o, 1), run_pipeline(o, 8),
                   "temporal window threads=8");
}

TEST(ParallelDeterminism, HardwareConcurrencyModeMatchesSerial) {
  // num_threads = 0 resolves to hardware concurrency; still bit-identical.
  expect_identical(run_pipeline(base_options(), 1),
                   run_pipeline(base_options(), 0), "threads=hw");
}

TEST(ParallelDeterminism, DerivedChannelSeedsDifferAcrossPipelineSeeds) {
  // The bugfix this suite locks in: with channel.seed left unset, two
  // pipelines with different seeds must not share identical drop
  // realizations.
  core::PipelineOptions o = base_options();
  o.channel.drop_probability = 0.3;
  core::PipelineOptions o2 = o;
  o2.seed = 1234;
  const RunRecord a = run_pipeline(o, 1);
  const RunRecord b = run_pipeline(o2, 1);
  ASSERT_GT(a.messages_dropped, 0u);
  ASSERT_GT(b.messages_dropped, 0u);
  // Same policy decisions (seed only feeds clustering/models/channel; the
  // adaptive policies are deterministic), so identical drop realizations
  // would give identical drop counts; distinct seeds must diverge.
  EXPECT_NE(a.messages_dropped, b.messages_dropped);
}

}  // namespace
}  // namespace resmon
