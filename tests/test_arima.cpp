#include "forecast/arima.hpp"

#include <cmath>
#include <numbers>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace resmon::forecast {
namespace {

std::vector<double> ar1_series(double phi, double mean, std::size_t n,
                               double noise, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> x(n);
  double state = 0.0;
  for (std::size_t t = 0; t < n; ++t) {
    state = phi * state + rng.normal(0.0, noise);
    x[t] = mean + state;
  }
  return x;
}

TEST(ArimaOrder, ToStringFormats) {
  EXPECT_EQ((ArimaOrder{.p = 2, .d = 1, .q = 1}).to_string(), "(2,1,1)");
  EXPECT_EQ((ArimaOrder{.p = 1, .d = 0, .q = 0, .sp = 1, .sd = 0, .sq = 0,
                        .season = 12})
                .to_string(),
            "(1,0,0)(1,0,0)[12]");
}

TEST(ArimaOrder, MeanOnlyWithoutDifferencing) {
  EXPECT_TRUE((ArimaOrder{.p = 1, .d = 0, .q = 0}).needs_mean());
  EXPECT_FALSE((ArimaOrder{.p = 1, .d = 1, .q = 0}).needs_mean());
  EXPECT_EQ((ArimaOrder{.p = 2, .d = 0, .q = 1}).num_params(), 4u);
  EXPECT_EQ((ArimaOrder{.p = 2, .d = 1, .q = 1}).num_params(), 3u);
}

TEST(Arima, ValidatesConstruction) {
  EXPECT_THROW(ArimaForecaster(ArimaOrder{.d = 3}), InvalidArgument);
  EXPECT_THROW(ArimaForecaster(ArimaOrder{.sd = 2, .season = 12}),
               InvalidArgument);
  EXPECT_THROW(ArimaForecaster(ArimaOrder{.sp = 1, .season = 0}),
               InvalidArgument);
}

TEST(Arima, UsageBeforeFitThrows) {
  ArimaForecaster f(ArimaOrder{.p = 1});
  EXPECT_THROW(f.forecast(1), InvalidState);
  EXPECT_THROW(f.update(0.1), InvalidState);
  EXPECT_THROW(f.css(), InvalidState);
  EXPECT_THROW(f.aicc(), InvalidState);
}

TEST(Arima, TooShortSeriesThrows) {
  ArimaForecaster f(ArimaOrder{.p = 1});
  const std::vector<double> tiny{0.1, 0.2, 0.3};
  EXPECT_THROW(f.fit(tiny), NumericalError);
}

TEST(Arima, RecoversAr1Coefficient) {
  const std::vector<double> x = ar1_series(0.7, 0.5, 4000, 0.05, 1);
  ArimaForecaster f(ArimaOrder{.p = 1, .d = 0, .q = 0});
  f.fit(x);
  // coefficients layout: [phi_1, mean]
  EXPECT_NEAR(f.coefficients()[0], 0.7, 0.06);
  EXPECT_NEAR(f.coefficients()[1], 0.5, 0.05);
}

TEST(Arima, Ar1ForecastDecaysTowardMean) {
  const std::vector<double> x = ar1_series(0.8, 0.4, 3000, 0.05, 2);
  ArimaForecaster f(ArimaOrder{.p = 1});
  f.fit(x);
  const double f1 = f.forecast(1);
  const double f100 = f.forecast(100);
  // Long-horizon forecast approaches the series mean.
  EXPECT_NEAR(f100, 0.4, 0.05);
  // One-step forecast is between the last value and the mean.
  const double last = x.back();
  EXPECT_LE(std::min(last, 0.4) - 0.1, f1);
  EXPECT_GE(std::max(last, 0.4) + 0.1, f1);
}

TEST(Arima, RandomWalkWithDriftViaDifferencing) {
  // x_t = x_{t-1} + 0.01 + noise  ->  ARIMA(0,1,0) forecast extends drift.
  Rng rng(3);
  std::vector<double> x(1500);
  x[0] = 0.0;
  for (std::size_t t = 1; t < x.size(); ++t) {
    x[t] = x[t - 1] + 0.01 + rng.normal(0.0, 0.002);
  }
  ArimaForecaster f(ArimaOrder{.p = 0, .d = 1, .q = 0});
  f.fit(x);
  // With d=1 and no ARMA terms, the forecast holds the last value (no mean
  // term is estimated under differencing in this implementation).
  EXPECT_NEAR(f.forecast(1), x.back(), 0.05);
}

TEST(Arima, Ma1ResidualsShrinkCss) {
  // Pure MA(1): fitting with q=1 must fit better (lower sigma2) than white
  // noise would suggest fitting worse... compare against q=0 fit.
  Rng rng(4);
  std::vector<double> e(2001);
  for (double& v : e) v = rng.normal(0.0, 0.1);
  std::vector<double> x(2000);
  for (std::size_t t = 0; t < x.size(); ++t) {
    x[t] = 0.5 + e[t + 1] + 0.6 * e[t];
  }
  ArimaForecaster ma(ArimaOrder{.p = 0, .d = 0, .q = 1});
  ma.fit(x);
  ArimaForecaster wn(ArimaOrder{.p = 0, .d = 0, .q = 0});
  wn.fit(x);
  EXPECT_LT(ma.sigma2(), wn.sigma2());
  EXPECT_LT(ma.aicc(), wn.aicc());
}

TEST(Arima, UpdateExtendsSeriesConsistently) {
  const std::vector<double> x = ar1_series(0.6, 0.5, 1200, 0.05, 5);
  // Fit on the full series vs fit on a prefix + updates: forecasts from the
  // same data must agree closely (same coefficients path differs only via
  // the optimizer, so fit prefix == fit full is not required; instead check
  // update() keeps the forecast finite and in a sane range).
  ArimaForecaster f(ArimaOrder{.p = 1});
  f.fit(std::span<const double>(x.data(), 1000));
  for (std::size_t t = 1000; t < x.size(); ++t) f.update(x[t]);
  const double fc = f.forecast(5);
  EXPECT_TRUE(std::isfinite(fc));
  EXPECT_NEAR(fc, 0.5, 0.3);
}

TEST(Arima, SeasonalModelTracksSeasonality) {
  // Strong period-12 seasonal pattern plus noise.
  Rng rng(6);
  std::vector<double> x(1200);
  for (std::size_t t = 0; t < x.size(); ++t) {
    x[t] = 0.5 +
           0.3 * std::sin(2.0 * std::numbers::pi * static_cast<double>(t) /
                          12.0) +
           rng.normal(0.0, 0.02);
  }
  ArimaForecaster f(
      ArimaOrder{.p = 0, .d = 0, .q = 0, .sp = 1, .sd = 1, .sq = 0,
                 .season = 12});
  f.fit(x);
  // Forecast one full season ahead: should match the seasonal value.
  for (std::size_t h = 1; h <= 12; ++h) {
    const std::size_t idx = x.size() + h - 1;
    const double expected =
        0.5 + 0.3 * std::sin(2.0 * std::numbers::pi *
                             static_cast<double>(idx) / 12.0);
    EXPECT_NEAR(f.forecast(h), expected, 0.1) << "h = " << h;
  }
}

TEST(Arima, ForecastHorizonZeroRejected) {
  const std::vector<double> x = ar1_series(0.5, 0.5, 500, 0.05, 7);
  ArimaForecaster f(ArimaOrder{.p = 1});
  f.fit(x);
  EXPECT_THROW(f.forecast(0), InvalidArgument);
}

TEST(Arima, ConstantSeriesIsHandled) {
  std::vector<double> x(300, 0.42);
  ArimaForecaster f(ArimaOrder{.p = 1});
  f.fit(x);
  EXPECT_NEAR(f.forecast(10), 0.42, 1e-6);
}

TEST(ArimaDiagnostics, CorrectModelLeavesWhiteResiduals) {
  const std::vector<double> x = ar1_series(0.7, 0.5, 3000, 0.05, 18);
  ArimaForecaster f(ArimaOrder{.p = 1});
  f.fit(x);
  EXPECT_GT(f.residual_diagnostics(20).p_value, 0.01);
}

TEST(ArimaDiagnostics, UnderfitModelIsRejected) {
  // White-noise model on strongly autocorrelated data.
  const std::vector<double> x = ar1_series(0.9, 0.5, 3000, 0.05, 19);
  ArimaForecaster f(ArimaOrder{.p = 0, .d = 0, .q = 0});
  f.fit(x);
  EXPECT_LT(f.residual_diagnostics(20).p_value, 1e-6);
}

TEST(ArimaDiagnostics, BeforeFitThrows) {
  ArimaForecaster f(ArimaOrder{.p = 1});
  EXPECT_THROW(f.residual_diagnostics(), InvalidState);
}

// ---- AutoArima ----------------------------------------------------------

TEST(AutoArima, SelectsSomeModelAndForecasts) {
  const std::vector<double> x = ar1_series(0.75, 0.5, 1500, 0.05, 8);
  AutoArimaForecaster f(ArimaGrid{.max_p = 2, .max_d = 1, .max_q = 1});
  f.fit(x);
  EXPECT_TRUE(f.is_fitted());
  EXPECT_FALSE(f.candidates().empty());
  EXPECT_TRUE(std::isfinite(f.forecast(10)));
}

TEST(AutoArima, PrefersArOverWhiteNoiseForArData) {
  const std::vector<double> x = ar1_series(0.85, 0.5, 3000, 0.05, 9);
  AutoArimaForecaster f(ArimaGrid{.max_p = 1, .max_d = 0, .max_q = 0});
  f.fit(x);
  EXPECT_EQ(f.selected().order().p, 1u);
}

TEST(AutoArima, SelectedAiccIsMinimal) {
  const std::vector<double> x = ar1_series(0.6, 0.5, 1000, 0.05, 10);
  AutoArimaForecaster f(ArimaGrid{.max_p = 2, .max_d = 1, .max_q = 2});
  f.fit(x);
  const double best = f.selected().aicc();
  for (const ArimaCandidate& c : f.candidates()) {
    EXPECT_GE(c.aicc, best - 1e-9) << c.order.to_string();
  }
}

TEST(AutoArima, UsageBeforeFitThrows) {
  AutoArimaForecaster f;
  EXPECT_THROW(f.forecast(1), InvalidState);
  EXPECT_THROW(f.update(0.0), InvalidState);
  EXPECT_THROW(f.selected(), InvalidState);
}

TEST(AutoArima, TooShortSeriesThrows) {
  AutoArimaForecaster f;
  EXPECT_THROW(f.fit(std::vector<double>{0.1, 0.2}), NumericalError);
}

TEST(AutoArima, PaperGridMatchesPaperRanges) {
  const ArimaGrid g = ArimaGrid::paper_grid(288);
  EXPECT_EQ(g.max_p, 5u);
  EXPECT_EQ(g.max_d, 2u);
  EXPECT_EQ(g.max_q, 5u);
  EXPECT_EQ(g.max_sp, 2u);
  EXPECT_EQ(g.max_sd, 1u);
  EXPECT_EQ(g.max_sq, 2u);
  EXPECT_EQ(g.season, 288u);
}

// ---- prediction intervals -------------------------------------------------

TEST(ArimaIntervals, Ar1VarianceMatchesTheory) {
  // For AR(1), se_h^2 = sigma^2 * (1 - phi^(2h)) / (1 - phi^2).
  const double phi = 0.8;
  const std::vector<double> x = ar1_series(phi, 0.5, 6000, 0.05, 12);
  ArimaForecaster f(ArimaOrder{.p = 1});
  f.fit(x);
  const double sigma = std::sqrt(f.sigma2());
  for (const std::size_t h : {1u, 2u, 5u, 20u}) {
    const double expected =
        sigma * std::sqrt((1.0 - std::pow(phi, 2.0 * h)) /
                          (1.0 - phi * phi));
    EXPECT_NEAR(f.forecast_stddev(h), expected, 0.15 * expected)
        << "h = " << h;
  }
}

TEST(ArimaIntervals, WidenWithHorizon) {
  const std::vector<double> x = ar1_series(0.7, 0.5, 2000, 0.05, 13);
  ArimaForecaster f(ArimaOrder{.p = 1, .q = 1});
  f.fit(x);
  double prev = 0.0;
  for (const std::size_t h : {1u, 5u, 10u, 30u}) {
    const double se = f.forecast_stddev(h);
    EXPECT_GE(se, prev);
    prev = se;
  }
}

TEST(ArimaIntervals, RandomWalkVarianceGrowsLinearly) {
  // ARIMA(0,1,0): se_h = sigma * sqrt(h).
  Rng rng(14);
  std::vector<double> x(2000);
  x[0] = 0.0;
  for (std::size_t t = 1; t < x.size(); ++t) {
    x[t] = x[t - 1] + rng.normal(0.0, 0.01);
  }
  ArimaForecaster f(ArimaOrder{.p = 0, .d = 1, .q = 0});
  f.fit(x);
  const double sigma = std::sqrt(f.sigma2());
  EXPECT_NEAR(f.forecast_stddev(4), 2.0 * sigma, 0.1 * sigma);
  EXPECT_NEAR(f.forecast_stddev(9), 3.0 * sigma, 0.1 * sigma);
}

TEST(ArimaIntervals, IntervalBracketsPointForecast) {
  const std::vector<double> x = ar1_series(0.6, 0.4, 1000, 0.04, 15);
  ArimaForecaster f(ArimaOrder{.p = 1});
  f.fit(x);
  const ArimaForecaster::Interval iv = f.forecast_interval(5, 0.95);
  EXPECT_LT(iv.lower, iv.point);
  EXPECT_GT(iv.upper, iv.point);
  EXPECT_NEAR(iv.point, f.forecast(5), 1e-12);
  // 99% interval is wider than 80%.
  const auto wide = f.forecast_interval(5, 0.99);
  const auto narrow = f.forecast_interval(5, 0.80);
  EXPECT_GT(wide.upper - wide.lower, narrow.upper - narrow.lower);
}

TEST(ArimaIntervals, EmpiricalCoverageIsRoughlyNominal) {
  // Fit on a prefix, then check that ~95% of later one-step truths fall in
  // the 95% interval.
  const double phi = 0.75;
  const std::vector<double> x = ar1_series(phi, 0.5, 3000, 0.05, 16);
  ArimaForecaster f(ArimaOrder{.p = 1});
  f.fit(std::span<const double>(x.data(), 2000));
  std::size_t covered = 0;
  std::size_t total = 0;
  for (std::size_t t = 2000; t < x.size(); ++t) {
    const auto iv = f.forecast_interval(1, 0.95);
    if (x[t] >= iv.lower && x[t] <= iv.upper) ++covered;
    ++total;
    f.update(x[t]);
  }
  const double coverage =
      static_cast<double>(covered) / static_cast<double>(total);
  EXPECT_GT(coverage, 0.90);
  EXPECT_LT(coverage, 0.99);
}

TEST(ArimaIntervals, Validates) {
  const std::vector<double> x = ar1_series(0.5, 0.5, 500, 0.05, 17);
  ArimaForecaster f(ArimaOrder{.p = 1});
  EXPECT_THROW(f.forecast_stddev(1), InvalidState);  // before fit
  f.fit(x);
  EXPECT_THROW(f.forecast_stddev(0), InvalidArgument);
  EXPECT_THROW(f.forecast_interval(1, 0.0), InvalidArgument);
  EXPECT_THROW(f.forecast_interval(1, 1.0), InvalidArgument);
}

// Property sweep: forecasts of a fitted AR(1) stay within the data's
// plausible envelope for a range of horizons.
class ArimaHorizonTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ArimaHorizonTest, ForecastsStayBounded) {
  const std::size_t h = GetParam();
  const std::vector<double> x = ar1_series(0.8, 0.5, 2000, 0.05, 11);
  ArimaForecaster f(ArimaOrder{.p = 1, .d = 0, .q = 1});
  f.fit(x);
  const double fc = f.forecast(h);
  EXPECT_TRUE(std::isfinite(fc));
  EXPECT_GT(fc, 0.0);
  EXPECT_LT(fc, 1.0);
}

INSTANTIATE_TEST_SUITE_P(Horizons, ArimaHorizonTest,
                         ::testing::Values(1, 5, 10, 25, 50));

}  // namespace
}  // namespace resmon::forecast
