#include <vector>

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "forecast/forecaster.hpp"
#include "forecast/managed.hpp"
#include "forecast/arima.hpp"
#include "forecast/sample_hold.hpp"

namespace resmon::forecast {
namespace {

TEST(SampleHold, ForecastIsLastValue) {
  SampleHoldForecaster f;
  const std::vector<double> series{0.1, 0.2, 0.7};
  f.fit(series);
  EXPECT_DOUBLE_EQ(f.forecast(1), 0.7);
  EXPECT_DOUBLE_EQ(f.forecast(50), 0.7);
}

TEST(SampleHold, UpdateMovesTheHold) {
  SampleHoldForecaster f;
  f.fit(std::vector<double>{0.5});
  f.update(0.9);
  EXPECT_DOUBLE_EQ(f.forecast(3), 0.9);
}

TEST(SampleHold, UsageBeforeFitThrows) {
  SampleHoldForecaster f;
  EXPECT_FALSE(f.is_fitted());
  EXPECT_THROW(f.update(0.1), InvalidState);
  EXPECT_THROW(f.forecast(1), InvalidState);
  EXPECT_THROW(f.fit(std::vector<double>{}), InvalidArgument);
}

TEST(SampleHold, HorizonZeroRejected) {
  SampleHoldForecaster f;
  f.fit(std::vector<double>{0.5});
  EXPECT_THROW(f.forecast(0), InvalidArgument);
}

TEST(ForecasterFactory, MakesEveryKind) {
  for (const ForecasterKind kind :
       {ForecasterKind::kSampleHold, ForecasterKind::kArima,
        ForecasterKind::kAutoArima, ForecasterKind::kLstm}) {
    const auto f = make_forecaster(kind, 1);
    ASSERT_NE(f, nullptr);
    EXPECT_FALSE(f->is_fitted());
    EXPECT_FALSE(f->name().empty());
  }
}

TEST(ForecasterFactory, ParsesNames) {
  EXPECT_EQ(forecaster_kind_from_string("hold"),
            ForecasterKind::kSampleHold);
  EXPECT_EQ(forecaster_kind_from_string("arima"), ForecasterKind::kArima);
  EXPECT_EQ(forecaster_kind_from_string("auto-arima"),
            ForecasterKind::kAutoArima);
  EXPECT_EQ(forecaster_kind_from_string("lstm"), ForecasterKind::kLstm);
  EXPECT_THROW(forecaster_kind_from_string("rnn"), InvalidArgument);
}

TEST(ForecasterFactory, RoundTripsToString) {
  EXPECT_EQ(to_string(ForecasterKind::kSampleHold), "SampleHold");
  EXPECT_EQ(to_string(ForecasterKind::kLstm), "LSTM");
}

// ---- ManagedForecaster ------------------------------------------------

TEST(Managed, ValidatesConstruction) {
  EXPECT_THROW(
      ManagedForecaster(nullptr, {.initial_steps = 10, .retrain_interval = 5}),
      InvalidArgument);
  EXPECT_THROW(ManagedForecaster(std::make_unique<SampleHoldForecaster>(),
                                 {.initial_steps = 1, .retrain_interval = 5}),
               InvalidArgument);
  EXPECT_THROW(ManagedForecaster(std::make_unique<SampleHoldForecaster>(),
                                 {.initial_steps = 10, .retrain_interval = 0}),
               InvalidArgument);
}

TEST(Managed, FallsBackToHoldBeforeInitialFit) {
  ManagedForecaster m(std::make_unique<SampleHoldForecaster>(),
                      {.initial_steps = 10, .retrain_interval = 5});
  m.observe(0.3);
  EXPECT_FALSE(m.ready());
  EXPECT_DOUBLE_EQ(m.forecast(4), 0.3);  // fallback: last observation
}

TEST(Managed, FitsAtInitialSteps) {
  ManagedForecaster m(std::make_unique<SampleHoldForecaster>(),
                      {.initial_steps = 5, .retrain_interval = 100});
  for (int i = 0; i < 4; ++i) m.observe(0.1 * i);
  EXPECT_FALSE(m.ready());
  m.observe(0.9);  // 5th observation triggers the initial fit
  EXPECT_TRUE(m.ready());
  EXPECT_EQ(m.fits_completed(), 1u);
}

TEST(Managed, RetrainsOnSchedule) {
  ManagedForecaster m(std::make_unique<SampleHoldForecaster>(),
                      {.initial_steps = 4, .retrain_interval = 3});
  for (int i = 0; i < 4; ++i) m.observe(0.5);  // initial fit at 4
  EXPECT_EQ(m.fits_completed(), 1u);
  m.observe(0.5);
  m.observe(0.5);
  EXPECT_EQ(m.fits_completed(), 1u);
  m.observe(0.5);  // 7 = 4 + 3 -> retrain
  EXPECT_EQ(m.fits_completed(), 2u);
  m.observe(0.5);
  m.observe(0.5);
  m.observe(0.5);  // 10 = 4 + 2*3 -> retrain
  EXPECT_EQ(m.fits_completed(), 3u);
}

TEST(Managed, UpdatesTransientStateBetweenFits) {
  ManagedForecaster m(std::make_unique<SampleHoldForecaster>(),
                      {.initial_steps = 3, .retrain_interval = 100});
  m.observe(0.1);
  m.observe(0.2);
  m.observe(0.3);  // fit here
  m.observe(0.8);  // update
  EXPECT_DOUBLE_EQ(m.forecast(2), 0.8);
}

TEST(Managed, ForecastWithoutObservationsThrows) {
  ManagedForecaster m(std::make_unique<SampleHoldForecaster>(),
                      {.initial_steps = 3, .retrain_interval = 5});
  EXPECT_THROW(m.forecast(1), InvalidState);
}

TEST(Managed, UnfittableModelStaysInFallbackRegime) {
  // A seasonal ARIMA whose season is far longer than the data available at
  // the scheduled fit: fit() throws NumericalError internally and the
  // manager must keep serving the sample-and-hold fallback.
  auto model = std::make_unique<ArimaForecaster>(
      ArimaOrder{.p = 0, .d = 0, .q = 0, .sp = 1, .sd = 1, .sq = 0,
                 .season = 500});
  ManagedForecaster m(std::move(model),
                      {.initial_steps = 10, .retrain_interval = 20});
  for (int i = 0; i < 40; ++i) m.observe(0.3 + 0.001 * i);
  EXPECT_FALSE(m.ready());
  EXPECT_EQ(m.fits_completed(), 0u);
  EXPECT_DOUBLE_EQ(m.forecast(5), 0.3 + 0.001 * 39);  // last observation
}

TEST(Managed, TracksTrainingTime) {
  ManagedForecaster m(std::make_unique<SampleHoldForecaster>(),
                      {.initial_steps = 2, .retrain_interval = 2});
  for (int i = 0; i < 10; ++i) m.observe(0.5);
  EXPECT_GE(m.total_training_seconds(), 0.0);
  EXPECT_GT(m.fits_completed(), 1u);
}

}  // namespace
}  // namespace resmon::forecast
