#include "common/optim.hpp"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace resmon::optim {
namespace {

TEST(NelderMead, MinimizesQuadratic1D) {
  auto f = [](std::span<const double> x) {
    return (x[0] - 3.0) * (x[0] - 3.0);
  };
  const OptimResult r = nelder_mead(f, {0.0});
  EXPECT_NEAR(r.x[0], 3.0, 1e-3);
  EXPECT_LT(r.value, 1e-6);
}

TEST(NelderMead, MinimizesShiftedSphere3D) {
  auto f = [](std::span<const double> x) {
    double s = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      const double d = x[i] - static_cast<double>(i + 1);
      s += d * d;
    }
    return s;
  };
  const OptimResult r = nelder_mead(f, {0.0, 0.0, 0.0},
                                    {.max_iterations = 2000});
  EXPECT_NEAR(r.x[0], 1.0, 1e-2);
  EXPECT_NEAR(r.x[1], 2.0, 1e-2);
  EXPECT_NEAR(r.x[2], 3.0, 1e-2);
}

TEST(NelderMead, MakesProgressOnRosenbrock) {
  auto f = [](std::span<const double> x) {
    const double a = 1.0 - x[0];
    const double b = x[1] - x[0] * x[0];
    return a * a + 100.0 * b * b;
  };
  const OptimResult r =
      nelder_mead(f, {-1.2, 1.0}, {.max_iterations = 5000});
  EXPECT_NEAR(r.x[0], 1.0, 0.05);
  EXPECT_NEAR(r.x[1], 1.0, 0.1);
}

TEST(NelderMead, ReportsConvergenceOnEasyProblem) {
  auto f = [](std::span<const double> x) { return x[0] * x[0]; };
  const OptimResult r = nelder_mead(f, {1.0}, {.max_iterations = 5000});
  EXPECT_TRUE(r.converged);
}

TEST(NelderMead, RespectsIterationBudget) {
  auto f = [](std::span<const double> x) { return std::fabs(x[0]); };
  const OptimResult r = nelder_mead(f, {100.0}, {.max_iterations = 3});
  EXPECT_LE(r.iterations, 3u);
}

TEST(NelderMead, EmptyStartThrows) {
  auto f = [](std::span<const double>) { return 0.0; };
  EXPECT_THROW(nelder_mead(f, {}), InvalidArgument);
}

TEST(Adam, ConvergesOnQuadratic) {
  std::vector<double> params{5.0, -3.0};
  Adam adam(2, {.learning_rate = 0.1});
  for (int i = 0; i < 500; ++i) {
    const std::vector<double> grad{2.0 * (params[0] - 1.0),
                                   2.0 * (params[1] + 2.0)};
    adam.step(params, grad);
  }
  EXPECT_NEAR(params[0], 1.0, 1e-2);
  EXPECT_NEAR(params[1], -2.0, 1e-2);
}

TEST(Adam, FirstStepIsBoundedByLearningRate) {
  std::vector<double> params{0.0};
  Adam adam(1, {.learning_rate = 0.01});
  adam.step(params, std::vector<double>{1000.0});
  // Bias-corrected Adam moves by ~lr regardless of gradient magnitude.
  EXPECT_NEAR(params[0], -0.01, 1e-4);
}

TEST(Adam, DimensionMismatchThrows) {
  Adam adam(2);
  std::vector<double> params{0.0, 0.0};
  EXPECT_THROW(adam.step(params, std::vector<double>{1.0}),
               InvalidArgument);
}

TEST(Adam, ZeroDimensionThrows) { EXPECT_THROW(Adam(0), InvalidArgument); }

TEST(Adam, TracksStepCount) {
  Adam adam(1);
  std::vector<double> p{0.0};
  const std::vector<double> g{1.0};
  adam.step(p, g);
  adam.step(p, g);
  EXPECT_EQ(adam.steps_taken(), 2u);
}

// Property sweep: Nelder-Mead finds the minimum of |x - c| + (y - c)^2 for
// a range of offsets c.
class NelderMeadOffsetTest : public ::testing::TestWithParam<double> {};

TEST_P(NelderMeadOffsetTest, FindsShiftedMinimum) {
  const double c = GetParam();
  auto f = [c](std::span<const double> x) {
    return std::fabs(x[0] - c) + (x[1] - c) * (x[1] - c);
  };
  const OptimResult r =
      nelder_mead(f, {0.0, 0.0}, {.max_iterations = 4000});
  EXPECT_NEAR(r.x[0], c, 0.05);
  EXPECT_NEAR(r.x[1], c, 0.05);
}

INSTANTIATE_TEST_SUITE_P(Offsets, NelderMeadOffsetTest,
                         ::testing::Values(-2.0, -0.3, 0.0, 0.7, 4.0));

}  // namespace
}  // namespace resmon::optim
