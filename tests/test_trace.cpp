#include "trace/trace.hpp"

#include <cmath>
#include <memory>
#include <sstream>

#include <gtest/gtest.h>

#include "common/stats.hpp"
#include "trace/loader.hpp"
#include "trace/synthetic.hpp"

namespace resmon::trace {
namespace {

TEST(InMemoryTrace, StoresAndReturnsValues) {
  InMemoryTrace t(2, 3, 2);
  t.set_value(1, 2, 0, 0.5);
  EXPECT_DOUBLE_EQ(t.value(1, 2, 0), 0.5);
  EXPECT_DOUBLE_EQ(t.value(0, 0, 0), 0.0);
}

TEST(InMemoryTrace, RejectsEmptyDimensions) {
  EXPECT_THROW(InMemoryTrace(0, 1, 1), InvalidArgument);
  EXPECT_THROW(InMemoryTrace(1, 0, 1), InvalidArgument);
  EXPECT_THROW(InMemoryTrace(1, 1, 0), InvalidArgument);
}

TEST(InMemoryTrace, MeasurementAndSeriesViews) {
  InMemoryTrace t(1, 3, 2);
  t.set_value(0, 0, 0, 0.1);
  t.set_value(0, 1, 0, 0.2);
  t.set_value(0, 2, 0, 0.3);
  t.set_value(0, 1, 1, 0.9);
  const std::vector<double> m = t.measurement(0, 1);
  EXPECT_DOUBLE_EQ(m[0], 0.2);
  EXPECT_DOUBLE_EQ(m[1], 0.9);
  const std::vector<double> s = t.series(0, 0);
  EXPECT_EQ(s.size(), 3u);
  EXPECT_DOUBLE_EQ(s[2], 0.3);
}

TEST(SubTrace, RestrictsNodesAndSteps) {
  auto base = std::make_shared<InMemoryTrace>(4, 10, 1);
  base->set_value(2, 5, 0, 0.7);
  SubTrace sub(base, {2, 3}, 8);
  EXPECT_EQ(sub.num_nodes(), 2u);
  EXPECT_EQ(sub.num_steps(), 8u);
  EXPECT_DOUBLE_EQ(sub.value(0, 5, 0), 0.7);
}

TEST(SubTrace, ValidatesArguments) {
  auto base = std::make_shared<InMemoryTrace>(4, 10, 1);
  EXPECT_THROW(SubTrace(base, {5}, 8), InvalidArgument);
  EXPECT_THROW(SubTrace(base, {0}, 11), InvalidArgument);
  EXPECT_THROW(SubTrace(base, {}, 8), InvalidArgument);
  EXPECT_THROW(SubTrace(nullptr, {0}, 8), InvalidArgument);
}

TEST(ResourceNames, CpuAndMemory) {
  EXPECT_EQ(resource_name(kCpu), "CPU");
  EXPECT_EQ(resource_name(kMemory), "Memory");
  EXPECT_EQ(resource_name(5), "Resource5");
}

TEST(Synthetic, GeneratorIsDeterministic) {
  SyntheticProfile p = alibaba_profile();
  p.num_nodes = 10;
  p.num_steps = 100;
  const InMemoryTrace a = generate(p, 42);
  const InMemoryTrace b = generate(p, 42);
  for (std::size_t t = 0; t < p.num_steps; t += 7) {
    EXPECT_DOUBLE_EQ(a.value(3, t, 0), b.value(3, t, 0));
  }
}

TEST(Synthetic, DifferentSeedsDiffer) {
  SyntheticProfile p = google_profile();
  p.num_nodes = 10;
  p.num_steps = 50;
  const InMemoryTrace a = generate(p, 1);
  const InMemoryTrace b = generate(p, 2);
  bool any_diff = false;
  for (std::size_t t = 0; t < p.num_steps && !any_diff; ++t) {
    any_diff = a.value(0, t, 0) != b.value(0, t, 0);
  }
  EXPECT_TRUE(any_diff);
}

TEST(Synthetic, ValuesAreNormalized) {
  for (const char* name : {"alibaba", "bitbrains", "google", "sensors"}) {
    SyntheticProfile p = profile_by_name(name);
    p.num_nodes = 20;
    p.num_steps = 300;
    const InMemoryTrace t = generate(p, 3);
    for (std::size_t i = 0; i < t.num_nodes(); ++i) {
      for (std::size_t s = 0; s < t.num_steps(); ++s) {
        for (std::size_t r = 0; r < t.num_resources(); ++r) {
          const double v = t.value(i, s, r);
          ASSERT_GE(v, 0.0) << name;
          ASSERT_LE(v, 1.0) << name;
        }
      }
    }
  }
}

TEST(Synthetic, QuantizationRoundsValues) {
  SyntheticProfile p = alibaba_profile();
  p.num_nodes = 5;
  p.num_steps = 50;
  p.quantization = 0.01;
  const InMemoryTrace t = generate(p, 9);
  for (std::size_t s = 0; s < p.num_steps; ++s) {
    const double v = t.value(0, s, 0);
    EXPECT_NEAR(v, std::round(v * 100.0) / 100.0, 1e-9);
  }
}

TEST(Synthetic, UnknownProfileThrows) {
  EXPECT_THROW(profile_by_name("nope"), InvalidArgument);
}

TEST(Synthetic, ProfileLookupIsCaseSensitive) {
  // Scenario packs (and the CLI) pass names through verbatim; "Google"
  // silently mapping to "google" would hide pack typos, so it must throw.
  EXPECT_NO_THROW(profile_by_name("google"));
  EXPECT_THROW(profile_by_name("Google"), InvalidArgument);
  EXPECT_THROW(profile_by_name("ALIBABA"), InvalidArgument);
  EXPECT_THROW(profile_by_name(" google"), InvalidArgument);
}

TEST(Synthetic, PaperScaleProfilesMatchPaper) {
  EXPECT_EQ(scale_to_paper(alibaba_profile()).num_nodes, 4000u);
  EXPECT_EQ(scale_to_paper(bitbrains_profile()).num_nodes, 500u);
  EXPECT_EQ(scale_to_paper(google_profile()).num_steps, 8350u);
}

// The motivational property of Fig. 1: sensor nodes are strongly correlated
// in the long term; machines in a compute cluster are not.
TEST(Synthetic, SensorsCorrelateMoreThanMachines) {
  SyntheticProfile sensors = sensors_profile();
  sensors.num_nodes = 12;
  sensors.num_steps = 800;
  SyntheticProfile machines = google_profile();
  machines.num_nodes = 12;
  machines.num_steps = 800;

  const InMemoryTrace st = generate(sensors, 5);
  const InMemoryTrace mt = generate(machines, 5);

  auto median_corr = [](const Trace& t) {
    std::vector<double> corrs;
    for (std::size_t i = 0; i < t.num_nodes(); ++i) {
      for (std::size_t j = i + 1; j < t.num_nodes(); ++j) {
        corrs.push_back(
            stats::pearson(t.series(i, 0), t.series(j, 0)));
      }
    }
    return stats::quantile(corrs, 0.5);
  };
  EXPECT_GT(median_corr(st), 0.5);
  EXPECT_LT(median_corr(mt), 0.5);
}

TEST(Synthetic, RegimeSwitchingChangesGroups) {
  // With a high switch probability, node series should decorrelate from
  // their initial group over time; smoke-check that the trace still stays
  // in range and is not constant.
  SyntheticProfile p = alibaba_profile();
  p.num_nodes = 8;
  p.num_steps = 400;
  p.regime_switch_probability = 0.05;
  const InMemoryTrace t = generate(p, 13);
  const std::vector<double> s = t.series(0, 0);
  EXPECT_GT(stats::stddev(s), 0.0);
}

// ---- CSV loader ---------------------------------------------------------

TEST(Loader, RoundTripsThroughCsv) {
  SyntheticProfile p = bitbrains_profile();
  p.num_nodes = 4;
  p.num_steps = 20;
  const InMemoryTrace original = generate(p, 21);

  std::stringstream ss;
  save_csv(original, ss);
  const InMemoryTrace loaded = load_csv(ss);

  ASSERT_EQ(loaded.num_nodes(), original.num_nodes());
  ASSERT_EQ(loaded.num_steps(), original.num_steps());
  ASSERT_EQ(loaded.num_resources(), original.num_resources());
  for (std::size_t i = 0; i < original.num_nodes(); ++i) {
    for (std::size_t t = 0; t < original.num_steps(); ++t) {
      for (std::size_t r = 0; r < original.num_resources(); ++r) {
        EXPECT_NEAR(loaded.value(i, t, r), original.value(i, t, r), 1e-9);
      }
    }
  }
}

TEST(Loader, FillsGapsWithPreviousValue) {
  std::stringstream ss;
  ss << "node,step,cpu\n"
     << "0,0,0.5\n"
     << "0,2,0.9\n";  // step 1 missing
  const InMemoryTrace t = load_csv(ss);
  EXPECT_DOUBLE_EQ(t.value(0, 0, 0), 0.5);
  EXPECT_DOUBLE_EQ(t.value(0, 1, 0), 0.5);  // held
  EXPECT_DOUBLE_EQ(t.value(0, 2, 0), 0.9);
}

TEST(Loader, SkipsCommentLinesAnywhere) {
  // Host recordings are trace CSVs with '#' metadata lines (magic header,
  // timestamps, end trailer); the loader must skip them wherever they sit.
  std::stringstream ss;
  ss << "# resmon-host-recording v1\n"
     << "# interval_ms=100 resources=1\n"
     << "node,step,cpu\n"
     << "0,0,0.5\n"
     << "# ts_ms=1000,1100\n"
     << "0,1,0.75\n"
     << "# end rows=2\n";
  const InMemoryTrace t = load_csv(ss);
  EXPECT_EQ(t.num_steps(), 2u);
  EXPECT_DOUBLE_EQ(t.value(0, 0, 0), 0.5);
  EXPECT_DOUBLE_EQ(t.value(0, 1, 0), 0.75);
}

TEST(Loader, CommentOnlyInputIsStillEmpty) {
  std::stringstream ss;
  ss << "# just\n# comments\n";
  EXPECT_THROW(load_csv(ss), Error);
}

TEST(Loader, RejectsEmptyInput) {
  std::stringstream ss;
  EXPECT_THROW(load_csv(ss), Error);
}

TEST(Loader, RejectsMalformedNumbers) {
  std::stringstream ss;
  ss << "node,step,cpu\n0,0,banana\n";
  EXPECT_THROW(load_csv(ss), Error);
}

TEST(Loader, RejectsWrongFieldCount) {
  std::stringstream ss;
  ss << "node,step,cpu\n0,0\n";
  EXPECT_THROW(load_csv(ss), Error);
}

TEST(Loader, MissingFileThrows) {
  EXPECT_THROW(load_csv_file("/nonexistent/trace.csv"), Error);
}

// Malformed-input coverage: every corrupt row must surface as a clean
// Error naming the line (and where possible the column), never UB or a
// giant allocation. The scenario .scn parser shares these parse helpers.

namespace {
template <typename Fn>
void expect_error_containing(Fn fn, const std::string& needle) {
  try {
    fn();
    FAIL() << "expected Error containing '" << needle << "'";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << e.what();
  }
}
}  // namespace

TEST(Loader, TruncatedRowNamesLineAndFieldCount) {
  std::stringstream ss;
  ss << "node,step,cpu,mem\n"
     << "0,0,0.5,0.6\n"
     << "0,1,0.5\n";  // row truncated mid-record
  expect_error_containing([&] { load_csv(ss); },
                          "line 3 has wrong field count (expected 4, got 3)");
}

TEST(Loader, NonNumericCellNamesLineAndColumn) {
  std::stringstream ss;
  ss << "node,step,cpu,mem\n"
     << "0,0,0.5,fast\n";
  expect_error_containing([&] { load_csv(ss); }, "line 2 column mem");
}

TEST(Loader, NonNumericNodeIndexNamesTheLine) {
  std::stringstream ss;
  ss << "node,step,cpu\n"
     << "host-7,0,0.5\n";
  expect_error_containing([&] { load_csv(ss); }, "line 2 node");
}

TEST(Loader, NegativeIndexIsRejectedNotWrappedAround) {
  std::stringstream ss;
  ss << "node,step,cpu\n"
     << "-1,0,0.5\n";
  EXPECT_THROW(load_csv(ss), Error);
}

TEST(Loader, AbsurdIndexFailsInsteadOfAllocating) {
  // A corrupt "4294967295" index must be diagnosed, not turned into a
  // multi-terabyte dense grid.
  std::stringstream ss;
  ss << "node,step,cpu\n"
     << "4294967295,0,0.5\n";
  expect_error_containing([&] { load_csv(ss); }, "index out of range");
}

TEST(Loader, HeaderOnlyFileIsRejected) {
  std::stringstream ss;
  ss << "node,step,cpu\n";
  expect_error_containing([&] { load_csv(ss); }, "no data rows");
}

TEST(Loader, TooFewHeaderColumnsIsRejected) {
  std::stringstream ss;
  ss << "node,step\n0,0\n";
  EXPECT_THROW(load_csv(ss), Error);
}

TEST(Loader, TrailingCommaCountsAsAnEmptyField) {
  std::stringstream ss;
  ss << "node,step,cpu\n"
     << "0,0,\n";  // empty cpu cell, field count is right
  expect_error_containing([&] { load_csv(ss); }, "line 2 column cpu");
}

TEST(Loader, CrlfLineEndingsParse) {
  std::stringstream ss;
  ss << "node,step,cpu\r\n"
     << "0,0,0.25\r\n";
  const InMemoryTrace t = load_csv(ss);
  EXPECT_DOUBLE_EQ(t.value(0, 0, 0), 0.25);
}

// ---- generator realism features -----------------------------------------

TEST(Synthetic, ReplicasMirrorTheirPartner) {
  SyntheticProfile p = google_profile();
  p.num_nodes = 20;
  p.num_steps = 400;
  p.replica_fraction = 0.5;  // nodes 10..19 replicate nodes 0..9
  p.replica_noise_std = 0.001;
  const InMemoryTrace t = generate(p, 31);
  // Every replica must be near-perfectly correlated with some original.
  for (std::size_t i = 10; i < 20; ++i) {
    double best = -1.0;
    for (std::size_t j = 0; j < 10; ++j) {
      best = std::max(best, stats::pearson(t.series(i, 0), t.series(j, 0)));
    }
    EXPECT_GT(best, 0.98) << "replica " << i;
  }
}

TEST(Synthetic, ZeroReplicaFractionKeepsNodesDistinct) {
  SyntheticProfile p = google_profile();
  p.num_nodes = 10;
  p.num_steps = 300;
  p.replica_fraction = 0.0;
  const InMemoryTrace t = generate(p, 32);
  for (std::size_t i = 0; i < 10; ++i) {
    for (std::size_t j = i + 1; j < 10; ++j) {
      EXPECT_LT(stats::pearson(t.series(i, 0), t.series(j, 0)), 0.999);
    }
  }
}

TEST(Synthetic, GroupJumpsShiftLevelsPermanently) {
  // With very frequent jumps the long-run variance of a node's series must
  // exceed the no-jump variance.
  SyntheticProfile base = google_profile();
  base.num_nodes = 10;
  base.num_steps = 1500;
  base.group_jump_probability = 0.0;
  SyntheticProfile jumpy = base;
  jumpy.group_jump_probability = 0.01;
  jumpy.group_jump_std = 0.2;
  const InMemoryTrace quiet = generate(base, 33);
  const InMemoryTrace moved = generate(jumpy, 33);
  double var_quiet = 0.0;
  double var_moved = 0.0;
  for (std::size_t i = 0; i < 10; ++i) {
    var_quiet += stats::variance(quiet.series(i, 0));
    var_moved += stats::variance(moved.series(i, 0));
  }
  EXPECT_GT(var_moved, var_quiet);
}

TEST(Synthetic, OffsetDriftDecorrelatesTrainAndTestLevels) {
  // With strong drift, a node's mean over an early window is a poor
  // predictor of its mean over a late window.
  SyntheticProfile p = google_profile();
  p.num_nodes = 30;
  p.num_steps = 2000;
  p.group_jump_probability = 0.0;
  p.regime_switch_probability = 0.0;
  p.node_offset_drift_std = 0.01;
  const InMemoryTrace t = generate(p, 34);
  double shift = 0.0;
  for (std::size_t i = 0; i < t.num_nodes(); ++i) {
    const std::vector<double> s = t.series(i, 0);
    const std::span<const double> early(s.data(), 500);
    const std::span<const double> late(s.data() + 1500, 500);
    shift += std::fabs(stats::mean(early) - stats::mean(late));
  }
  shift /= static_cast<double>(t.num_nodes());
  EXPECT_GT(shift, 0.05);  // drift std over 1500 steps ~ 0.39 per resource
}

TEST(Synthetic, WeekendDampeningLowersWeekendLoad) {
  SyntheticProfile p = google_profile();
  p.num_nodes = 10;
  p.diurnal_period = 50.0;      // short "days" so a trace covers weeks
  p.num_steps = 50 * 14;        // two weeks
  p.weekend_dampening = 0.5;
  p.group_jump_probability = 0.0;
  p.node_offset_drift_std = 0.0;
  const InMemoryTrace t = generate(p, 36);
  // Average over weekday steps vs weekend steps (days 5,6 and 12,13).
  double weekday = 0.0, weekend = 0.0;
  std::size_t n_weekday = 0, n_weekend = 0;
  for (std::size_t step = 0; step < t.num_steps(); ++step) {
    const std::size_t day = step / 50;
    const bool is_weekend = day % 7 >= 5;
    for (std::size_t i = 0; i < t.num_nodes(); ++i) {
      if (is_weekend) {
        weekend += t.value(i, step, 0);
        ++n_weekend;
      } else {
        weekday += t.value(i, step, 0);
        ++n_weekday;
      }
    }
  }
  EXPECT_LT(weekend / n_weekend, 0.8 * (weekday / n_weekday));
}

TEST(Synthetic, VolatilityRegimesProduceBurstyNoise) {
  // With extreme contrast between regimes, per-window variance of a node's
  // detrended series must vary strongly over time.
  SyntheticProfile p = google_profile();
  p.num_nodes = 4;
  p.num_steps = 2000;
  p.volatility_quiet = 0.02;
  p.volatility_active = 4.0;
  p.volatility_switch_probability = 0.01;
  p.spike_probability = 0.0;
  const InMemoryTrace t = generate(p, 35);
  const std::vector<double> s = t.series(0, 0);
  std::vector<double> window_stddevs;
  for (std::size_t start = 0; start + 50 <= s.size(); start += 50) {
    std::vector<double> diffs;
    for (std::size_t i = start + 1; i < start + 50; ++i) {
      diffs.push_back(s[i] - s[i - 1]);  // detrend by differencing
    }
    window_stddevs.push_back(stats::stddev(diffs));
  }
  const double lo = stats::quantile(window_stddevs, 0.1);
  const double hi = stats::quantile(window_stddevs, 0.9);
  EXPECT_GT(hi, 3.0 * lo);
}

}  // namespace
}  // namespace resmon::trace
