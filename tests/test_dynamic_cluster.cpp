#include "cluster/dynamic_cluster.hpp"

#include <set>

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace resmon::cluster {
namespace {

/// Two 1-D groups around lo and hi with per-point jitter.
Matrix two_groups(double lo, double hi, std::size_t per_group, Rng& rng) {
  Matrix points(2 * per_group, 1);
  for (std::size_t i = 0; i < per_group; ++i) {
    points(i, 0) = lo + rng.normal(0.0, 0.02);
    points(per_group + i, 0) = hi + rng.normal(0.0, 0.02);
  }
  return points;
}

TEST(DynamicCluster, ValidatesOptions) {
  EXPECT_THROW(DynamicClusterTracker({.k = 0}, 1), InvalidArgument);
  EXPECT_THROW(DynamicClusterTracker({.k = 2, .history_m = 0}, 1),
               InvalidArgument);
  EXPECT_THROW(
      DynamicClusterTracker({.k = 2, .history_m = 5, .history_capacity = 2},
                            1),
      InvalidArgument);
}

TEST(DynamicCluster, FirstUpdateProducesKClusters) {
  DynamicClusterTracker tracker({.k = 2}, 1);
  Rng rng(1);
  const Clustering& c = tracker.update(two_groups(0.2, 0.8, 10, rng));
  EXPECT_EQ(c.assignment.size(), 20u);
  EXPECT_EQ(c.centroids.rows(), 2u);
  std::set<std::size_t> labels(c.assignment.begin(), c.assignment.end());
  EXPECT_EQ(labels.size(), 2u);
}

TEST(DynamicCluster, LabelsStayStableAcrossSteps) {
  // The same two groups drift slightly each step; the re-indexing must keep
  // each group under the same label for the whole run.
  DynamicClusterTracker tracker({.k = 2, .history_m = 1}, 2);
  Rng rng(2);
  const Clustering& first = tracker.update(two_groups(0.2, 0.8, 10, rng));
  const std::size_t lo_label = first.assignment[0];
  const std::size_t hi_label = first.assignment[10];
  ASSERT_NE(lo_label, hi_label);

  for (std::size_t t = 1; t < 30; ++t) {
    const double drift = 0.002 * static_cast<double>(t);
    const Clustering& c =
        tracker.update(two_groups(0.2 + drift, 0.8 - drift, 10, rng));
    for (std::size_t i = 0; i < 10; ++i) {
      EXPECT_EQ(c.assignment[i], lo_label) << "t=" << t;
      EXPECT_EQ(c.assignment[10 + i], hi_label) << "t=" << t;
    }
  }
}

TEST(DynamicCluster, CentroidSeriesTracksGroupMeans) {
  DynamicClusterTracker tracker({.k = 2}, 3);
  Rng rng(3);
  for (std::size_t t = 0; t < 10; ++t) {
    tracker.update(two_groups(0.3, 0.7, 8, rng));
  }
  const Clustering& c = tracker.history(0);
  const std::size_t lo_label = c.assignment[0];
  const std::vector<double> series = tracker.centroid_series(lo_label, 0);
  ASSERT_EQ(series.size(), 10u);
  for (const double v : series) EXPECT_NEAR(v, 0.3, 0.05);
}

TEST(DynamicCluster, MembershipSwitchIsTracked) {
  // Move half of the low group to the high group mid-run; their labels
  // must change while the cluster labels themselves stay aligned.
  DynamicClusterTracker tracker({.k = 2}, 4);
  Rng rng(4);
  const Clustering& first = tracker.update(two_groups(0.2, 0.8, 10, rng));
  const std::size_t lo_label = first.assignment[0];
  const std::size_t hi_label = first.assignment[10];

  for (std::size_t t = 1; t < 5; ++t) {
    tracker.update(two_groups(0.2, 0.8, 10, rng));
  }
  // Points 0..4 migrate to the high level.
  Matrix migrated = two_groups(0.2, 0.8, 10, rng);
  for (std::size_t i = 0; i < 5; ++i) migrated(i, 0) = 0.8;
  const Clustering& after = tracker.update(migrated);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(after.assignment[i], hi_label);
  }
  for (std::size_t i = 5; i < 10; ++i) {
    EXPECT_EQ(after.assignment[i], lo_label);
  }
}

TEST(DynamicCluster, HistoryCapacityIsEnforced) {
  DynamicClusterTracker tracker({.k = 2, .history_capacity = 3}, 5);
  Rng rng(5);
  for (std::size_t t = 0; t < 10; ++t) {
    tracker.update(two_groups(0.2, 0.8, 5, rng));
  }
  EXPECT_EQ(tracker.history_size(), 3u);
  EXPECT_EQ(tracker.steps(), 10u);
  EXPECT_THROW(tracker.history(3), InvalidArgument);
}

TEST(DynamicCluster, CentroidSeriesKeptInFullDespiteCapacity) {
  DynamicClusterTracker tracker({.k = 2, .history_capacity = 2}, 6);
  Rng rng(6);
  for (std::size_t t = 0; t < 7; ++t) {
    tracker.update(two_groups(0.1, 0.9, 5, rng));
  }
  EXPECT_EQ(tracker.centroid_series(0).size(), 7u);
}

TEST(DynamicCluster, NodeCountMustStayConstant) {
  DynamicClusterTracker tracker({.k = 2}, 7);
  Rng rng(7);
  tracker.update(two_groups(0.2, 0.8, 5, rng));
  EXPECT_THROW(tracker.update(two_groups(0.2, 0.8, 6, rng)),
               InvalidArgument);
}

TEST(DynamicCluster, TooFewPointsThrows) {
  DynamicClusterTracker tracker({.k = 5}, 8);
  EXPECT_THROW(tracker.update(Matrix(3, 1)), InvalidArgument);
}

TEST(DynamicCluster, SeparateFeatureAndValueSpaces) {
  // Cluster on a 2-step window feature but report centroids in value space.
  DynamicClusterTracker tracker({.k = 2}, 9);
  Rng rng(9);
  const Matrix values = two_groups(0.2, 0.8, 6, rng);
  Matrix features(12, 2);
  for (std::size_t i = 0; i < 12; ++i) {
    features(i, 0) = values(i, 0);
    features(i, 1) = values(i, 0);
  }
  const Clustering& c = tracker.update(features, values);
  EXPECT_EQ(c.centroids.cols(), 1u);
  const std::size_t lo = c.assignment[0];
  EXPECT_NEAR(c.centroids(lo, 0), 0.2, 0.05);
}

TEST(DynamicCluster, JaccardSimilarityAlsoKeepsLabelsStable) {
  DynamicClusterTracker tracker(
      {.k = 2, .similarity = SimilarityKind::kJaccard}, 10);
  Rng rng(10);
  const Clustering& first = tracker.update(two_groups(0.2, 0.8, 10, rng));
  const std::size_t lo_label = first.assignment[0];
  for (std::size_t t = 1; t < 20; ++t) {
    const Clustering& c = tracker.update(two_groups(0.2, 0.8, 10, rng));
    EXPECT_EQ(c.assignment[0], lo_label) << "t=" << t;
  }
}

// Property sweep over M: deeper similarity lookback must still keep labels
// of persistent groups stable.
class LookbackTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LookbackTest, StableUnderLookbackM) {
  const std::size_t m = GetParam();
  DynamicClusterTracker tracker(
      {.k = 3, .history_m = m, .history_capacity = std::max<std::size_t>(m, 16)},
      11);
  Rng rng(11 + m);
  auto three_groups = [&]() {
    Matrix points(15, 1);
    for (std::size_t i = 0; i < 5; ++i) {
      points(i, 0) = 0.1 + rng.normal(0.0, 0.01);
      points(5 + i, 0) = 0.5 + rng.normal(0.0, 0.01);
      points(10 + i, 0) = 0.9 + rng.normal(0.0, 0.01);
    }
    return points;
  };
  const Clustering& first = tracker.update(three_groups());
  const std::size_t labels[3] = {first.assignment[0], first.assignment[5],
                                 first.assignment[10]};
  for (std::size_t t = 1; t < 25; ++t) {
    const Clustering& c = tracker.update(three_groups());
    EXPECT_EQ(c.assignment[0], labels[0]);
    EXPECT_EQ(c.assignment[5], labels[1]);
    EXPECT_EQ(c.assignment[10], labels[2]);
  }
}

INSTANTIATE_TEST_SUITE_P(Ms, LookbackTest, ::testing::Values(1, 2, 5, 12));

}  // namespace
}  // namespace resmon::cluster
