#include "cluster/dynamic_cluster.hpp"

#include <set>

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace resmon::cluster {
namespace {

using obs::Labels;

/// Two 1-D groups around lo and hi with per-point jitter.
Matrix two_groups(double lo, double hi, std::size_t per_group, Rng& rng) {
  Matrix points(2 * per_group, 1);
  for (std::size_t i = 0; i < per_group; ++i) {
    points(i, 0) = lo + rng.normal(0.0, 0.02);
    points(per_group + i, 0) = hi + rng.normal(0.0, 0.02);
  }
  return points;
}

TEST(DynamicCluster, ValidatesOptions) {
  EXPECT_THROW(DynamicClusterTracker({.k = 0}, 1), InvalidArgument);
  EXPECT_THROW(DynamicClusterTracker({.k = 2, .history_m = 0}, 1),
               InvalidArgument);
  EXPECT_THROW(
      DynamicClusterTracker({.k = 2, .history_m = 5, .history_capacity = 2},
                            1),
      InvalidArgument);
}

TEST(DynamicCluster, FirstUpdateProducesKClusters) {
  DynamicClusterTracker tracker({.k = 2}, 1);
  Rng rng(1);
  const Clustering& c = tracker.update(two_groups(0.2, 0.8, 10, rng));
  EXPECT_EQ(c.assignment.size(), 20u);
  EXPECT_EQ(c.centroids.rows(), 2u);
  std::set<std::size_t> labels(c.assignment.begin(), c.assignment.end());
  EXPECT_EQ(labels.size(), 2u);
}

TEST(DynamicCluster, LabelsStayStableAcrossSteps) {
  // The same two groups drift slightly each step; the re-indexing must keep
  // each group under the same label for the whole run.
  DynamicClusterTracker tracker({.k = 2, .history_m = 1}, 2);
  Rng rng(2);
  const Clustering& first = tracker.update(two_groups(0.2, 0.8, 10, rng));
  const std::size_t lo_label = first.assignment[0];
  const std::size_t hi_label = first.assignment[10];
  ASSERT_NE(lo_label, hi_label);

  for (std::size_t t = 1; t < 30; ++t) {
    const double drift = 0.002 * static_cast<double>(t);
    const Clustering& c =
        tracker.update(two_groups(0.2 + drift, 0.8 - drift, 10, rng));
    for (std::size_t i = 0; i < 10; ++i) {
      EXPECT_EQ(c.assignment[i], lo_label) << "t=" << t;
      EXPECT_EQ(c.assignment[10 + i], hi_label) << "t=" << t;
    }
  }
}

TEST(DynamicCluster, CentroidSeriesTracksGroupMeans) {
  DynamicClusterTracker tracker({.k = 2}, 3);
  Rng rng(3);
  for (std::size_t t = 0; t < 10; ++t) {
    tracker.update(two_groups(0.3, 0.7, 8, rng));
  }
  const Clustering& c = tracker.history(0);
  const std::size_t lo_label = c.assignment[0];
  const std::vector<double> series = tracker.centroid_series(lo_label, 0);
  ASSERT_EQ(series.size(), 10u);
  for (const double v : series) EXPECT_NEAR(v, 0.3, 0.05);
}

TEST(DynamicCluster, MembershipSwitchIsTracked) {
  // Move half of the low group to the high group mid-run; their labels
  // must change while the cluster labels themselves stay aligned.
  DynamicClusterTracker tracker({.k = 2}, 4);
  Rng rng(4);
  const Clustering& first = tracker.update(two_groups(0.2, 0.8, 10, rng));
  const std::size_t lo_label = first.assignment[0];
  const std::size_t hi_label = first.assignment[10];

  for (std::size_t t = 1; t < 5; ++t) {
    tracker.update(two_groups(0.2, 0.8, 10, rng));
  }
  // Points 0..4 migrate to the high level.
  Matrix migrated = two_groups(0.2, 0.8, 10, rng);
  for (std::size_t i = 0; i < 5; ++i) migrated(i, 0) = 0.8;
  const Clustering& after = tracker.update(migrated);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(after.assignment[i], hi_label);
  }
  for (std::size_t i = 5; i < 10; ++i) {
    EXPECT_EQ(after.assignment[i], lo_label);
  }
}

TEST(DynamicCluster, HistoryCapacityIsEnforced) {
  DynamicClusterTracker tracker({.k = 2, .history_capacity = 3}, 5);
  Rng rng(5);
  for (std::size_t t = 0; t < 10; ++t) {
    tracker.update(two_groups(0.2, 0.8, 5, rng));
  }
  EXPECT_EQ(tracker.history_size(), 3u);
  EXPECT_EQ(tracker.steps(), 10u);
  EXPECT_THROW(tracker.history(3), InvalidArgument);
}

TEST(DynamicCluster, CentroidSeriesKeptInFullDespiteCapacity) {
  DynamicClusterTracker tracker({.k = 2, .history_capacity = 2}, 6);
  Rng rng(6);
  for (std::size_t t = 0; t < 7; ++t) {
    tracker.update(two_groups(0.1, 0.9, 5, rng));
  }
  EXPECT_EQ(tracker.centroid_series(0, 0).size(), 7u);
  EXPECT_EQ(tracker.centroid_series_flat(0).size(),
            7u * tracker.centroid_dims());
}

TEST(DynamicCluster, NodeCountMustStayConstant) {
  DynamicClusterTracker tracker({.k = 2}, 7);
  Rng rng(7);
  tracker.update(two_groups(0.2, 0.8, 5, rng));
  EXPECT_THROW(tracker.update(two_groups(0.2, 0.8, 6, rng)),
               InvalidArgument);
}

TEST(DynamicCluster, TooFewPointsThrows) {
  DynamicClusterTracker tracker({.k = 5}, 8);
  EXPECT_THROW(tracker.update(Matrix(3, 1)), InvalidArgument);
}

TEST(DynamicCluster, SeparateFeatureAndValueSpaces) {
  // Cluster on a 2-step window feature but report centroids in value space.
  DynamicClusterTracker tracker({.k = 2}, 9);
  Rng rng(9);
  const Matrix values = two_groups(0.2, 0.8, 6, rng);
  Matrix features(12, 2);
  for (std::size_t i = 0; i < 12; ++i) {
    features(i, 0) = values(i, 0);
    features(i, 1) = values(i, 0);
  }
  const Clustering& c = tracker.update(features, values);
  EXPECT_EQ(c.centroids.cols(), 1u);
  const std::size_t lo = c.assignment[0];
  EXPECT_NEAR(c.centroids(lo, 0), 0.2, 0.05);
}

TEST(DynamicCluster, JaccardSimilarityAlsoKeepsLabelsStable) {
  DynamicClusterTracker tracker(
      {.k = 2, .similarity = SimilarityKind::kJaccard}, 10);
  Rng rng(10);
  const Clustering& first = tracker.update(two_groups(0.2, 0.8, 10, rng));
  const std::size_t lo_label = first.assignment[0];
  for (std::size_t t = 1; t < 20; ++t) {
    const Clustering& c = tracker.update(two_groups(0.2, 0.8, 10, rng));
    EXPECT_EQ(c.assignment[0], lo_label) << "t=" << t;
  }
}

// Property sweep over M: deeper similarity lookback must still keep labels
// of persistent groups stable.
class LookbackTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LookbackTest, StableUnderLookbackM) {
  const std::size_t m = GetParam();
  DynamicClusterTracker tracker(
      {.k = 3, .history_m = m, .history_capacity = std::max<std::size_t>(m, 16)},
      11);
  Rng rng(11 + m);
  auto three_groups = [&]() {
    Matrix points(15, 1);
    for (std::size_t i = 0; i < 5; ++i) {
      points(i, 0) = 0.1 + rng.normal(0.0, 0.01);
      points(5 + i, 0) = 0.5 + rng.normal(0.0, 0.01);
      points(10 + i, 0) = 0.9 + rng.normal(0.0, 0.01);
    }
    return points;
  };
  const Clustering& first = tracker.update(three_groups());
  const std::size_t labels[3] = {first.assignment[0], first.assignment[5],
                                 first.assignment[10]};
  for (std::size_t t = 1; t < 25; ++t) {
    const Clustering& c = tracker.update(three_groups());
    EXPECT_EQ(c.assignment[0], labels[0]);
    EXPECT_EQ(c.assignment[5], labels[1]);
    EXPECT_EQ(c.assignment[10], labels[2]);
  }
}

INSTANTIATE_TEST_SUITE_P(Ms, LookbackTest, ::testing::Values(1, 2, 5, 12));

// -- edge cases, observed through the emitted metrics ------------------------

TEST(DynamicClusterMetrics, KEqualToNodeCountYieldsSingletons) {
  obs::MetricsRegistry reg;
  DynamicClusterTracker tracker({.k = 3, .metrics = &reg, .metrics_view = "a"},
                                12);
  Matrix points(3, 1);
  points(0, 0) = 0.0;
  points(1, 0) = 0.5;
  points(2, 0) = 1.0;
  const Clustering& c = tracker.update(points);
  const std::set<std::size_t> labels(c.assignment.begin(),
                                     c.assignment.end());
  EXPECT_EQ(labels.size(), 3u);  // every node its own cluster
  const Labels view = {{"view", "a"}};
  EXPECT_EQ(reg.value("resmon_cluster_updates_total", view), 1.0);
  EXPECT_EQ(reg.value("resmon_cluster_empty_clusters", view), 0.0);
  EXPECT_GT(reg.value("resmon_cluster_kmeans_iterations_total", view), 0.0);
}

TEST(DynamicClusterMetrics, KLargerThanNodesThrowsWithoutCountingUpdate) {
  obs::MetricsRegistry reg;
  DynamicClusterTracker tracker({.k = 5, .metrics = &reg, .metrics_view = "a"},
                                13);
  EXPECT_THROW(tracker.update(Matrix(3, 1)), InvalidArgument);
  // The failed update must not leak into the series.
  EXPECT_EQ(reg.value("resmon_cluster_updates_total", {{"view", "a"}}), 0.0);
}

TEST(DynamicClusterMetrics, RepairedEmptyClusterReadsZeroOnTheGauge) {
  // Two coincident points and one far away with K = 3: naive K-means can
  // leave a centroid memberless, but the empty-cluster repair must not —
  // and the gauge is how that invariant is monitored in production.
  obs::MetricsRegistry reg;
  DynamicClusterTracker tracker({.k = 3, .metrics = &reg, .metrics_view = "a"},
                                14);
  Matrix points(3, 1);
  points(0, 0) = 0.0;
  points(1, 0) = 0.0;
  points(2, 0) = 10.0;
  const Clustering& c = tracker.update(points);
  std::vector<std::size_t> member_count(3, 0);
  for (const std::size_t j : c.assignment) ++member_count[j];
  for (std::size_t j = 0; j < 3; ++j) EXPECT_GE(member_count[j], 1u);
  EXPECT_EQ(reg.value("resmon_cluster_empty_clusters", {{"view", "a"}}), 0.0);
}

TEST(DynamicClusterMetrics, DegenerateHungarianAllEqualWeights) {
  // Step 1 groups {0,1} vs {2,3}; step 2 regroups {0,2} vs {1,3}. Every
  // (new, old) cluster pair then shares exactly one node, so the eq. (10)
  // similarity matrix is all-ones and any permutation is optimal. The
  // tracker must still produce a valid one-to-one re-indexing and report
  // the degenerate total weight of 2 on the gauge.
  obs::MetricsRegistry reg;
  DynamicClusterTracker tracker(
      {.k = 2, .history_m = 1, .metrics = &reg, .metrics_view = "a"}, 15);
  Matrix step1(4, 1);
  step1(0, 0) = 0.0;
  step1(1, 0) = 0.0;
  step1(2, 0) = 10.0;
  step1(3, 0) = 10.0;
  tracker.update(step1);

  Matrix step2(4, 1);
  step2(0, 0) = 0.0;
  step2(1, 0) = 10.0;
  step2(2, 0) = 0.0;
  step2(3, 0) = 10.0;
  const Clustering& c = tracker.update(step2);
  const std::set<std::size_t> labels(c.assignment.begin(),
                                     c.assignment.end());
  EXPECT_EQ(labels.size(), 2u);
  EXPECT_EQ(c.assignment[0], c.assignment[2]);
  EXPECT_EQ(c.assignment[1], c.assignment[3]);
  EXPECT_NE(c.assignment[0], c.assignment[1]);

  const Labels view = {{"view", "a"}};
  EXPECT_EQ(reg.value("resmon_cluster_match_weight", view), 2.0);
  EXPECT_EQ(reg.value("resmon_cluster_updates_total", view), 2.0);
  // Exactly two of the four nodes kept their step-1 label under any
  // optimal permutation of the all-ones weight matrix.
  EXPECT_EQ(reg.value("resmon_cluster_reassignments_total", view), 2.0);
}

}  // namespace
}  // namespace resmon::cluster
