// Documentation drift tests: docs/METRICS.md must catalogue exactly the
// metric families the code can register — no undocumented metric, no
// documented ghost. The registry is populated the honest way, by
// constructing every metrics-emitting component (pipeline with a fault
// schedule, socket controller with the staleness policy, agent), then the
// exposition's `# TYPE` lines are diffed against the catalogue's table.
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "agg/aggregator.hpp"
#include "core/pipeline.hpp"
#include "host/procfs.hpp"
#include "host/sampler.hpp"
#include "net/agent.hpp"
#include "net/controller.hpp"
#include "net/socket.hpp"
#include "obs/metrics.hpp"
#include "scenario/runner.hpp"
#include "trace/synthetic.hpp"

namespace resmon {
namespace {

// Registers every metric family the codebase can emit into one registry.
// Construction alone suffices: all components register their series in
// their constructors (eagerly, including label-enumerated families like
// wire errors and fault kinds), never lazily on first use.
obs::MetricsRegistry& populated_registry() {
  static obs::MetricsRegistry registry;
  static bool done = false;
  if (done) return registry;
  done = true;

  trace::SyntheticProfile profile = trace::alibaba_profile();
  profile.num_nodes = 4;
  profile.num_steps = 16;
  static const trace::InMemoryTrace trace = trace::generate(profile, 1);

  // Pipeline (collect + cluster + forecast + pipeline families), with a
  // non-empty fault schedule so the faultnet families register too.
  core::PipelineOptions popts;
  popts.num_clusters = 2;
  popts.schedule = {.initial_steps = 4, .retrain_interval = 8};
  popts.metrics = &registry;
  popts.faults = faultnet::FaultSpec::parse("drop=0.01;seed=1");
  static core::MonitoringPipeline pipeline(trace, popts);

  // Socket controller with the staleness policy on (resmon_net_*), in
  // shard mode so the two-tier root families register too.
  net::ControllerOptions copts;
  copts.num_nodes = 1;
  copts.num_resources = trace.num_resources();
  copts.metrics = &registry;
  copts.stale_after_ms = 1000;
  copts.dead_after_ms = 2000;
  copts.num_shards = 1;
  static net::Controller controller(net::Socket::listen_tcp("127.0.0.1", 0),
                                    copts);

  // Aggregator tier (resmon_agg_*); its internal controller's registry is
  // left unset — the shard-mode controller above already covers those.
  agg::AggregatorOptions gopts;
  gopts.num_nodes = 1;
  gopts.num_resources = trace.num_resources();
  gopts.upstream_port = controller.port();  // never dialed: no connect here
  gopts.metrics = &registry;
  static agg::Aggregator aggregator(net::Socket::listen_tcp("127.0.0.1", 0),
                                    gopts);

  // Agent-side families register at construction, no connect needed.
  net::AgentOptions aopts;
  aopts.num_resources = trace.num_resources();
  aopts.metrics = &registry;
  static net::Agent agent(
      aopts, collect::make_policy_factory(collect::PolicyKind::kAlways, 1.0)());

  // Host sampler families (resmon_host_*) register at construction over a
  // fake procfs; no live-kernel reads in this test.
  static host::FakeProcfs procfs;
  host::HostSamplerOptions hopts;
  hopts.metrics = &registry;
  static host::HostSampler sampler(procfs, hopts);

  // Scenario-runner result gauges (resmon_scenario_*), registered the same
  // way ScenarioResult publication does.
  scenario::register_result_metrics(registry);

  return registry;
}

// Family names as the exposition declares them: `# TYPE <name> <type>`.
std::set<std::string> registered_families() {
  std::set<std::string> names;
  std::istringstream text(populated_registry().render_text());
  std::string line;
  while (std::getline(text, line)) {
    const std::string prefix = "# TYPE ";
    if (line.rfind(prefix, 0) != 0) continue;
    const std::size_t space = line.find(' ', prefix.size());
    names.insert(line.substr(prefix.size(), space - prefix.size()));
  }
  return names;
}

// Family names docs/METRICS.md catalogues: the backticked first column of
// its table rows (`| `resmon_...` | ...`).
std::set<std::string> documented_families() {
  const std::string path =
      std::string(RESMON_SOURCE_DIR) + "/docs/METRICS.md";
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::set<std::string> names;
  std::string line;
  while (std::getline(in, line)) {
    const std::string prefix = "| `resmon_";
    if (line.rfind(prefix, 0) != 0) continue;
    const std::size_t open = line.find('`');
    const std::size_t close = line.find('`', open + 1);
    if (close == std::string::npos) continue;
    names.insert(line.substr(open + 1, close - open - 1));
  }
  return names;
}

TEST(MetricsCatalogue, EveryRegisteredFamilyIsDocumented) {
  const std::set<std::string> documented = documented_families();
  for (const std::string& name : registered_families()) {
    EXPECT_TRUE(documented.count(name) > 0)
        << name << " is emitted by the code but missing from "
        << "docs/METRICS.md — add a row for it";
  }
}

TEST(MetricsCatalogue, EveryDocumentedFamilyExists) {
  const std::set<std::string> registered = registered_families();
  for (const std::string& name : documented_families()) {
    EXPECT_TRUE(registered.count(name) > 0)
        << name << " is catalogued in docs/METRICS.md but no component "
        << "registers it — stale row, delete or fix it";
  }
}

TEST(MetricsCatalogue, CatalogueIsNonTrivial) {
  // Guard against the drift tests passing vacuously on an empty table.
  EXPECT_GE(documented_families().size(), 40u);
  EXPECT_GE(registered_families().size(), 40u);
}

// -- performance playbook drift -----------------------------------------
// docs/PERFORMANCE.md documents every JSON-writing bench harness and the
// contract field names the playbook's policy hangs on. Harness names are
// read from the bench sources (the `BenchJson sink("suite", "harness")`
// second argument), so adding a harness without documenting it fails here.

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::set<std::string> json_bench_harnesses() {
  namespace fs = std::filesystem;
  const fs::path bench_dir = fs::path(RESMON_SOURCE_DIR) / "bench";
  std::set<std::string> names;
  for (const fs::directory_entry& entry : fs::directory_iterator(bench_dir)) {
    if (entry.path().extension() != ".cpp") continue;
    const std::string source = read_file(entry.path().string());
    // Match:  BenchJson sink("<suite>", "<harness>")
    const std::string marker = "BenchJson sink(\"";
    for (std::size_t pos = source.find(marker); pos != std::string::npos;
         pos = source.find(marker, pos + 1)) {
      const std::size_t suite_end = source.find('"', pos + marker.size());
      const std::size_t name_open = source.find('"', suite_end + 1);
      const std::size_t name_close = source.find('"', name_open + 1);
      if (name_close == std::string::npos) continue;
      names.insert(source.substr(name_open + 1, name_close - name_open - 1));
    }
  }
  return names;
}

TEST(PerformancePlaybook, DocumentsEveryJsonBenchHarness) {
  const std::string doc =
      read_file(std::string(RESMON_SOURCE_DIR) + "/docs/PERFORMANCE.md");
  const std::set<std::string> harnesses = json_bench_harnesses();
  EXPECT_GE(harnesses.size(), 3u);  // vacuous-pass guard
  for (const std::string& harness : harnesses) {
    EXPECT_NE(doc.find("`" + harness + "`"), std::string::npos)
        << harness << " writes BENCH_*.json rows but is not documented in "
        << "docs/PERFORMANCE.md — add it to the harness table";
  }
}

TEST(PerformancePlaybook, DocumentsContractFieldNames) {
  const std::string doc =
      read_file(std::string(RESMON_SOURCE_DIR) + "/docs/PERFORMANCE.md");
  const std::string bench = read_file(std::string(RESMON_SOURCE_DIR) +
                                      "/bench/micro_parallel_step.cpp");
  // The two contract fields the regression policy gates on must exist in
  // both the harness that emits them and the playbook that explains them.
  for (const char* field :
       {"cluster_forecast_speedup", "steady_allocs_per_step", "identical"}) {
    EXPECT_NE(bench.find(field), std::string::npos)
        << field << " vanished from bench/micro_parallel_step.cpp — update "
        << "docs/PERFORMANCE.md and this test together";
    EXPECT_NE(doc.find(field), std::string::npos)
        << field << " is emitted by micro_parallel_step but not documented "
        << "in docs/PERFORMANCE.md";
  }
}

}  // namespace
}  // namespace resmon
