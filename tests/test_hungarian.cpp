#include "cluster/hungarian.hpp"

#include <algorithm>
#include <numeric>
#include <set>

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace resmon::cluster {
namespace {

/// Exhaustive max-weight assignment by permutation enumeration (reference
/// for cross-checking the Hungarian result on small instances).
double brute_force_max(const Matrix& w) {
  std::vector<std::size_t> perm(w.rows());
  std::iota(perm.begin(), perm.end(), 0);
  double best = -1e18;
  do {
    double s = 0.0;
    for (std::size_t r = 0; r < w.rows(); ++r) s += w(r, perm[r]);
    best = std::max(best, s);
  } while (std::next_permutation(perm.begin(), perm.end()));
  return best;
}

TEST(Hungarian, TrivialOneByOne) {
  Matrix w{{5.0}};
  const auto a = max_weight_assignment(w);
  EXPECT_EQ(a[0], 0u);
}

TEST(Hungarian, KnownTwoByTwo) {
  // Choosing the diagonal gives 1 + 1 = 2; anti-diagonal gives 10 + 10.
  Matrix w{{1.0, 10.0}, {10.0, 1.0}};
  const auto a = max_weight_assignment(w);
  EXPECT_EQ(a[0], 1u);
  EXPECT_EQ(a[1], 0u);
  EXPECT_DOUBLE_EQ(assignment_value(w, a), 20.0);
}

TEST(Hungarian, KnownThreeByThreeMinCost) {
  Matrix cost{{4.0, 1.0, 3.0}, {2.0, 0.0, 5.0}, {3.0, 2.0, 2.0}};
  const auto a = min_cost_assignment(cost);
  // Optimal: row0->col1 (1), row1->col0 (2), row2->col2 (2) = 5.
  EXPECT_DOUBLE_EQ(assignment_value(cost, a), 5.0);
}

TEST(Hungarian, IdentityIsOptimalForDiagonalDominance) {
  Matrix w{{10.0, 0.0, 0.0}, {0.0, 10.0, 0.0}, {0.0, 0.0, 10.0}};
  const auto a = max_weight_assignment(w);
  for (std::size_t r = 0; r < 3; ++r) EXPECT_EQ(a[r], r);
}

TEST(Hungarian, ResultIsAPermutation) {
  Rng rng(1);
  const std::size_t n = 9;
  Matrix w(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) w(r, c) = rng.uniform();
  }
  const auto a = max_weight_assignment(w);
  std::set<std::size_t> used(a.begin(), a.end());
  EXPECT_EQ(used.size(), n);
  for (const std::size_t c : a) EXPECT_LT(c, n);
}

TEST(Hungarian, MatchesBruteForceOnRandomInstances) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    Rng rng(seed);
    const std::size_t n = 2 + seed % 5;  // n in [2, 6]
    Matrix w(n, n);
    for (std::size_t r = 0; r < n; ++r) {
      for (std::size_t c = 0; c < n; ++c) w(r, c) = rng.uniform(0.0, 10.0);
    }
    const auto a = max_weight_assignment(w);
    EXPECT_NEAR(assignment_value(w, a), brute_force_max(w), 1e-9)
        << "seed " << seed;
  }
}

TEST(Hungarian, HandlesNegativeWeights) {
  Matrix w{{-5.0, -1.0}, {-2.0, -10.0}};
  const auto a = max_weight_assignment(w);
  EXPECT_DOUBLE_EQ(assignment_value(w, a), -3.0);  // -1 + -2
}

TEST(Hungarian, HandlesTiesDeterministically) {
  Matrix w{{1.0, 1.0}, {1.0, 1.0}};
  const auto a = max_weight_assignment(w);
  EXPECT_DOUBLE_EQ(assignment_value(w, a), 2.0);
}

TEST(Hungarian, AllZeroWeightsStillPermutes) {
  Matrix w(4, 4);
  const auto a = max_weight_assignment(w);
  std::set<std::size_t> used(a.begin(), a.end());
  EXPECT_EQ(used.size(), 4u);
}

TEST(Hungarian, ValidatesInput) {
  EXPECT_THROW(min_cost_assignment(Matrix(2, 3)), InvalidArgument);
  EXPECT_THROW(min_cost_assignment(Matrix()), InvalidArgument);
}

TEST(Hungarian, AssignmentValueChecksSize) {
  Matrix w(3, 3);
  EXPECT_THROW(assignment_value(w, {0, 1}), InvalidArgument);
}

// Property sweep: on larger random instances the Hungarian result must be
// at least as good as a greedy row-by-row assignment.
class HungarianGreedyTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(HungarianGreedyTest, BeatsOrMatchesGreedy) {
  const std::size_t n = GetParam();
  Rng rng(n * 13);
  Matrix w(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) w(r, c) = rng.uniform();
  }
  const auto a = max_weight_assignment(w);

  std::vector<bool> taken(n, false);
  double greedy = 0.0;
  for (std::size_t r = 0; r < n; ++r) {
    std::size_t best = 0;
    double best_w = -1.0;
    for (std::size_t c = 0; c < n; ++c) {
      if (!taken[c] && w(r, c) > best_w) {
        best_w = w(r, c);
        best = c;
      }
    }
    taken[best] = true;
    greedy += best_w;
  }
  EXPECT_GE(assignment_value(w, a), greedy - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, HungarianGreedyTest,
                         ::testing::Values(3, 8, 16, 32, 64));

}  // namespace
}  // namespace resmon::cluster
