#include "common/stats.hpp"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace resmon::stats {
namespace {

TEST(Stats, MeanOfKnownValues) {
  const std::vector<double> x{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(x), 2.5);
}

TEST(Stats, MeanOfEmptyIsZero) {
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{}), 0.0);
}

TEST(Stats, VarianceOfConstantIsZero) {
  const std::vector<double> x{3.0, 3.0, 3.0};
  EXPECT_DOUBLE_EQ(variance(x), 0.0);
  EXPECT_DOUBLE_EQ(sample_variance(x), 0.0);
}

TEST(Stats, PopulationVsSampleVariance) {
  const std::vector<double> x{1.0, 2.0, 3.0};
  EXPECT_NEAR(variance(x), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(sample_variance(x), 1.0, 1e-12);
}

TEST(Stats, StddevIsSqrtOfVariance) {
  const std::vector<double> x{1.0, 5.0, 9.0, 2.0};
  EXPECT_NEAR(stddev(x), std::sqrt(variance(x)), 1e-12);
}

TEST(Stats, MinMax) {
  const std::vector<double> x{4.0, -1.0, 7.5, 0.0};
  EXPECT_DOUBLE_EQ(min(x), -1.0);
  EXPECT_DOUBLE_EQ(max(x), 7.5);
}

TEST(Stats, MinOfEmptyThrows) {
  EXPECT_THROW(min(std::vector<double>{}), InvalidArgument);
}

TEST(Stats, PearsonPerfectPositive) {
  const std::vector<double> x{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> y{2.0, 4.0, 6.0, 8.0};
  EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
}

TEST(Stats, PearsonPerfectNegative) {
  const std::vector<double> x{1.0, 2.0, 3.0};
  const std::vector<double> y{3.0, 2.0, 1.0};
  EXPECT_NEAR(pearson(x, y), -1.0, 1e-12);
}

TEST(Stats, PearsonOfConstantSeriesIsZero) {
  const std::vector<double> x{1.0, 1.0, 1.0};
  const std::vector<double> y{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(pearson(x, y), 0.0);
}

TEST(Stats, PearsonIsSymmetric) {
  Rng rng(7);
  std::vector<double> x(50), y(50);
  for (std::size_t i = 0; i < 50; ++i) {
    x[i] = rng.normal();
    y[i] = 0.5 * x[i] + rng.normal();
  }
  EXPECT_NEAR(pearson(x, y), pearson(y, x), 1e-12);
  EXPECT_GT(pearson(x, y), 0.0);
  EXPECT_LE(std::fabs(pearson(x, y)), 1.0);
}

TEST(Stats, PearsonLengthMismatchThrows) {
  const std::vector<double> x{1.0, 2.0};
  const std::vector<double> y{1.0, 2.0, 3.0};
  EXPECT_THROW(pearson(x, y), InvalidArgument);
}

TEST(Stats, SampleCovarianceMatchesManual) {
  const std::vector<double> x{1.0, 2.0, 3.0};
  const std::vector<double> y{2.0, 2.0, 5.0};
  // means: 2, 3; cov = ((-1)(-1) + 0 + (1)(2)) / 2 = 1.5
  EXPECT_NEAR(sample_covariance(x, y), 1.5, 1e-12);
}

TEST(Stats, AcfLagZeroIsOne) {
  Rng rng(1);
  std::vector<double> x(200);
  for (double& v : x) v = rng.normal();
  const std::vector<double> a = acf(x, 5);
  EXPECT_DOUBLE_EQ(a[0], 1.0);
  ASSERT_EQ(a.size(), 6u);
}

TEST(Stats, AcfOfAr1IsPositiveAndDecaying) {
  Rng rng(2);
  std::vector<double> x(4000);
  double state = 0.0;
  for (double& v : x) {
    state = 0.8 * state + rng.normal();
    v = state;
  }
  const std::vector<double> a = acf(x, 3);
  EXPECT_NEAR(a[1], 0.8, 0.1);
  EXPECT_GT(a[1], a[2]);
  EXPECT_GT(a[2], a[3]);
}

TEST(Stats, PacfOfAr1CutsOffAfterLagOne) {
  Rng rng(3);
  std::vector<double> x(6000);
  double state = 0.0;
  for (double& v : x) {
    state = 0.7 * state + rng.normal();
    v = state;
  }
  const std::vector<double> p = pacf(x, 4);
  EXPECT_NEAR(p[1], 0.7, 0.1);
  EXPECT_NEAR(p[2], 0.0, 0.08);
  EXPECT_NEAR(p[3], 0.0, 0.08);
}

TEST(Stats, QuantileEndpointsAndMedian) {
  const std::vector<double> x{3.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(quantile(x, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(x, 0.5), 2.0);
  EXPECT_DOUBLE_EQ(quantile(x, 1.0), 3.0);
}

TEST(Stats, QuantileInterpolates) {
  const std::vector<double> x{0.0, 10.0};
  EXPECT_NEAR(quantile(x, 0.25), 2.5, 1e-12);
}

TEST(Stats, EmpiricalCdfStepsThroughSamples) {
  EmpiricalCdf cdf({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(cdf(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf(1.0), 0.25);
  EXPECT_DOUBLE_EQ(cdf(2.5), 0.5);
  EXPECT_DOUBLE_EQ(cdf(4.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf(100.0), 1.0);
}

TEST(Stats, EmpiricalCdfIsMonotone) {
  Rng rng(4);
  std::vector<double> samples(300);
  for (double& v : samples) v = rng.normal();
  EmpiricalCdf cdf(samples);
  double prev = 0.0;
  for (double x = -4.0; x <= 4.0; x += 0.1) {
    const double f = cdf(x);
    EXPECT_GE(f, prev);
    prev = f;
  }
}

TEST(Stats, RmseOfIdenticalSeriesIsZero) {
  const std::vector<double> x{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(rmse(x, x), 0.0);
}

TEST(Stats, RmseKnownValue) {
  const std::vector<double> a{0.0, 0.0};
  const std::vector<double> b{3.0, 4.0};
  EXPECT_NEAR(rmse(a, b), std::sqrt(12.5), 1e-12);
}

TEST(Stats, NormalQuantileKnownValues) {
  EXPECT_NEAR(normal_quantile(0.5), 0.0, 1e-9);
  EXPECT_NEAR(normal_quantile(0.975), 1.959963985, 1e-6);
  EXPECT_NEAR(normal_quantile(0.995), 2.575829304, 1e-6);
  EXPECT_NEAR(normal_quantile(0.8413447461), 1.0, 1e-6);
}

TEST(Stats, NormalQuantileSymmetry) {
  for (const double p : {0.01, 0.1, 0.3, 0.45}) {
    EXPECT_NEAR(normal_quantile(p), -normal_quantile(1.0 - p), 1e-9);
  }
}

TEST(Stats, NormalQuantileTails) {
  EXPECT_NEAR(normal_quantile(1e-6), -4.753424309, 1e-5);
  EXPECT_LT(normal_quantile(1e-10), normal_quantile(1e-6));
}

TEST(Stats, NormalQuantileValidates) {
  EXPECT_THROW(normal_quantile(0.0), InvalidArgument);
  EXPECT_THROW(normal_quantile(1.0), InvalidArgument);
}

TEST(Stats, ChiSquareCdfKnownValues) {
  // k = 2: CDF(x) = 1 - exp(-x/2).
  EXPECT_NEAR(chi_square_cdf(2.0, 2.0), 1.0 - std::exp(-1.0), 1e-10);
  EXPECT_NEAR(chi_square_cdf(5.991, 2.0), 0.95, 1e-3);  // 95% quantile
  // k = 10: 95% quantile is ~18.307.
  EXPECT_NEAR(chi_square_cdf(18.307, 10.0), 0.95, 1e-3);
  EXPECT_DOUBLE_EQ(chi_square_cdf(0.0, 5.0), 0.0);
  EXPECT_NEAR(chi_square_cdf(1000.0, 3.0), 1.0, 1e-12);
  EXPECT_THROW(chi_square_cdf(1.0, 0.0), InvalidArgument);
}

TEST(Stats, LjungBoxAcceptsWhiteNoise) {
  Rng rng(8);
  std::vector<double> e(2000);
  for (double& v : e) v = rng.normal();
  const LjungBoxResult r = ljung_box(e, 20);
  EXPECT_GT(r.p_value, 0.01);  // whiteness not rejected
}

TEST(Stats, LjungBoxRejectsAutocorrelatedSeries) {
  Rng rng(9);
  std::vector<double> x(2000);
  double s = 0.0;
  for (double& v : x) {
    s = 0.8 * s + rng.normal();
    v = s;
  }
  const LjungBoxResult r = ljung_box(x, 20);
  EXPECT_LT(r.p_value, 1e-6);
  EXPECT_GT(r.statistic, 100.0);
}

TEST(Stats, LjungBoxValidates) {
  const std::vector<double> tiny{0.1, 0.2, 0.3};
  EXPECT_THROW(ljung_box(tiny, 5), InvalidArgument);
  EXPECT_THROW(ljung_box(tiny, 0), InvalidArgument);
}

// Property sweep: pearson of a series with a scaled/shifted copy is +/-1.
class PearsonScaleTest : public ::testing::TestWithParam<double> {};

TEST_P(PearsonScaleTest, AffineTransformPreservesMagnitude) {
  const double scale = GetParam();
  Rng rng(11);
  std::vector<double> x(100), y(100);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = rng.normal();
    y[i] = scale * x[i] + 7.0;
  }
  const double r = pearson(x, y);
  EXPECT_NEAR(r, scale > 0 ? 1.0 : -1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Scales, PearsonScaleTest,
                         ::testing::Values(-3.0, -0.5, 0.25, 1.0, 10.0));

}  // namespace
}  // namespace resmon::stats
