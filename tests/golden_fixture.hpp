// Shared golden-trace setup for the end-to-end suites. Every suite that
// replays a seeded synthetic fleet used to open with the same four lines
// (look up a profile, resize it, pick a seed, generate); keeping them here
// means the suites agree on what "the golden trace" is and a profile tweak
// can't silently fork the fixtures.
#pragma once

#include <cstdint>
#include <string>

#include "trace/synthetic.hpp"

namespace resmon::testing {

/// A seeded fleet from a named profile, resized to the requested shape.
/// Throws InvalidArgument for unknown profile names (see test_trace).
inline trace::InMemoryTrace make_golden_trace(const std::string& profile,
                                              std::size_t nodes,
                                              std::size_t steps,
                                              std::uint64_t seed) {
  trace::SyntheticProfile p = trace::profile_by_name(profile);
  p.num_nodes = nodes;
  p.num_steps = steps;
  return trace::generate(p, seed);
}

/// The heavyweight golden trace (60 nodes x 400 steps, Alibaba profile,
/// seed 11) shared by the determinism suites. Cached: generating it is the
/// expensive part of those tests, and the cache also guarantees every user
/// scores against literally the same object.
inline const trace::InMemoryTrace& golden_alibaba_trace() {
  static const trace::InMemoryTrace t =
      make_golden_trace("alibaba", 60, 400, 11);
  return t;
}

}  // namespace resmon::testing
