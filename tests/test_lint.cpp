// resmon_lint self-tests: feed crafted good/bad snippets through the checker
// library and assert every rule in the catalogue fires where it must and
// stays silent where it must not — including path scoping, the commented
// allowlist, and inline resmon-lint-allow suppressions. This is the suite
// that keeps the linter from silently rotting as the rule set grows.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lint/checker.hpp"
#include "lint/lexer.hpp"
#include "lint/rules.hpp"

namespace resmon::lint {
namespace {

std::vector<Finding> check(const std::string& path,
                           const std::string& content) {
  return run_rules(path, lex(content));
}

bool fires(const std::vector<Finding>& fs, const std::string& rule) {
  return std::any_of(fs.begin(), fs.end(),
                     [&](const Finding& f) { return f.rule == rule; });
}

int line_of(const std::vector<Finding>& fs, const std::string& rule) {
  for (const auto& f : fs) {
    if (f.rule == rule) return f.line;
  }
  return -1;
}

// ---------------------------------------------------------------- lexer

TEST(Lexer, StripsCommentsAndStrings) {
  const auto lexed = lex(
      "// rand() in a comment\n"
      "const char* s = \"rand()\";\n"
      "/* system_clock */ int x = 0;\n");
  for (const auto& t : lexed.tokens) {
    EXPECT_NE(t.text, "rand");
    EXPECT_NE(t.text, "system_clock");
  }
}

TEST(Lexer, RawStringsDoNotLeakTokens) {
  const auto lexed = lex("auto s = R\"(rand() srand() time(0))\";\nint y;\n");
  for (const auto& t : lexed.tokens) {
    EXPECT_NE(t.text, "rand");
  }
  // Line counting survives the raw string.
  EXPECT_EQ(lexed.tokens.back().line, 2);
}

TEST(Lexer, CollectsSuppressions) {
  const auto lexed = lex(
      "int a;  // resmon-lint-allow(determinism): reviewed\n"
      "int b;  // resmon-lint-allow(std-endl, virtual-dtor)\n");
  ASSERT_TRUE(lexed.suppressions.count(1));
  EXPECT_TRUE(lexed.suppressions.at(1).count("determinism"));
  ASSERT_TRUE(lexed.suppressions.count(2));
  EXPECT_TRUE(lexed.suppressions.at(2).count("std-endl"));
  EXPECT_TRUE(lexed.suppressions.at(2).count("virtual-dtor"));
}

// ---------------------------------------------------------- determinism

TEST(Determinism, FlagsBannedApisInSrc) {
  const std::string bad =
      "#include <cstdlib>\n"
      "int a() { return rand(); }\n"         // 2
      "void b() { srand(7); }\n"             // 3
      "long c() { return time(nullptr); }\n"  // 4
      "long d() { return time(0); }\n"        // 5
      "auto e = std::chrono::system_clock::now();\n"   // 6
      "auto f = std::chrono::steady_clock::now();\n"   // 7
      "std::random_device rd;\n";             // 8
  const auto fs = check("src/core/pipeline.cpp", bad);
  std::vector<int> lines;
  for (const auto& f : fs) {
    if (f.rule == "determinism") lines.push_back(f.line);
  }
  EXPECT_EQ(lines, (std::vector<int>{2, 3, 4, 5, 6, 7, 8}));
}

TEST(Determinism, IgnoresNonWallClockTimeCalls) {
  // time(&t) and identifiers that merely contain banned names are fine.
  const auto fs = check("src/core/pipeline.cpp",
                        "long f(long* t) { return time(t); }\n"
                        "int training_time = 3;\n"
                        "int randomize_nothing = 4;\n");
  EXPECT_FALSE(fires(fs, "determinism"));
}

TEST(Determinism, ScopedToSrcOnly) {
  const std::string bad = "int a() { return rand(); }\n";
  EXPECT_TRUE(fires(check("src/cluster/kmeans.cpp", bad), "determinism"));
  EXPECT_FALSE(fires(check("tests/test_foo.cpp", bad), "determinism"));
  EXPECT_FALSE(fires(check("bench/fig01.cpp", bad), "determinism"));
}

TEST(Determinism, InlineSuppressionSilences) {
  const auto fs = check(
      "src/core/pipeline.cpp",
      "// resmon-lint-allow(determinism): reviewed wall-clock read\n"
      "auto t = std::chrono::system_clock::now();\n");
  EXPECT_FALSE(fires(fs, "determinism"));
}

// ---------------------------------------------------------- pragma-once

TEST(PragmaOnce, FlagsMissingAndAcceptsPresent) {
  EXPECT_TRUE(fires(check("src/core/x.hpp", "int f();\n"), "pragma-once"));
  EXPECT_FALSE(
      fires(check("src/core/x.hpp", "#pragma once\nint f();\n"),
            "pragma-once"));
  // Source files do not need it.
  EXPECT_FALSE(fires(check("src/core/x.cpp", "int f() { return 0; }\n"),
                     "pragma-once"));
}

// ------------------------------------------------- using-namespace-header

TEST(UsingNamespace, FlagsNamespaceScopeInHeader) {
  const auto fs = check("src/core/x.hpp",
                        "#pragma once\n"
                        "using namespace std;\n");
  EXPECT_TRUE(fires(fs, "using-namespace-header"));
  EXPECT_EQ(line_of(fs, "using-namespace-header"), 2);
}

TEST(UsingNamespace, AllowsInsideFunctionBodiesAndSourceFiles) {
  EXPECT_FALSE(fires(check("src/core/x.hpp",
                           "#pragma once\n"
                           "inline int f() {\n"
                           "  using namespace std;\n"
                           "  return 0;\n"
                           "}\n"),
                     "using-namespace-header"));
  EXPECT_FALSE(fires(check("src/core/x.cpp", "using namespace std;\n"),
                     "using-namespace-header"));
}

TEST(UsingNamespace, AliasAndDeclarationsAreFine) {
  EXPECT_FALSE(fires(check("src/core/x.hpp",
                           "#pragma once\n"
                           "namespace fs = std::filesystem;\n"
                           "using std::vector;\n"),
                     "using-namespace-header"));
}

// ------------------------------------------------------------- std-endl

TEST(StdEndl, FlagsInSrcAndTools) {
  const std::string bad = "void f() { std::cout << 1 << std::endl; }\n";
  EXPECT_TRUE(fires(check("src/core/report.cpp", bad), "std-endl"));
  EXPECT_TRUE(fires(check("tools/resmon_cli.cpp", bad), "std-endl"));
  EXPECT_FALSE(fires(check("bench/fig01.cpp", bad), "std-endl"));
  EXPECT_FALSE(fires(check("examples/quickstart.cpp", bad), "std-endl"));
}

// ---------------------------------------------------- catch-all-swallow

TEST(CatchAll, FlagsSilentSwallowInRuntime) {
  const std::string bad =
      "void f() {\n"
      "  try { g(); } catch (...) { count++; }\n"
      "}\n";
  EXPECT_TRUE(fires(check("src/net/agent.cpp", bad), "catch-all-swallow"));
  EXPECT_TRUE(
      fires(check("src/faultnet/injector.cpp", bad), "catch-all-swallow"));
  // The scenario runner drives the runtime and turns its failures into
  // pass/fail verdicts, so a swallowed error there means bogus greens —
  // the rule covers src/scenario/ too (spec parser included).
  EXPECT_TRUE(
      fires(check("src/scenario/runner.cpp", bad), "catch-all-swallow"));
  EXPECT_TRUE(fires(check("src/scenario/scenario_spec.cpp", bad),
                    "catch-all-swallow"));
  // The host backend parses kernel-shaped text; a swallowed parse error
  // there silently turns garbage procfs into zeros, so it's in scope too.
  EXPECT_TRUE(fires(check("src/host/sampler.cpp", bad), "catch-all-swallow"));
  EXPECT_TRUE(fires(check("src/host/parsers.cpp", bad), "catch-all-swallow"));
  // Out of the rule's blast radius.
  EXPECT_FALSE(fires(check("src/common/thread_pool.cpp", bad),
                     "catch-all-swallow"));
}

TEST(CatchAll, RethrowOrLogIsFine) {
  EXPECT_FALSE(fires(check("src/net/agent.cpp",
                           "void f() {\n"
                           "  try { g(); } catch (...) { throw; }\n"
                           "}\n"),
                     "catch-all-swallow"));
  EXPECT_FALSE(fires(check("src/net/agent.cpp",
                           "void f() {\n"
                           "  try { g(); } catch (...) {\n"
                           "    std::cerr << \"agent: hello failed\\n\";\n"
                           "  }\n"
                           "}\n"),
                     "catch-all-swallow"));
  // Concrete exception types are always fine.
  EXPECT_FALSE(fires(check("src/net/agent.cpp",
                           "void f() {\n"
                           "  try { g(); } catch (const std::exception&) {}\n"
                           "}\n"),
                     "catch-all-swallow"));
}

// -------------------------------------------------------- explicit-ctor

TEST(ExplicitCtor, FlagsSingleArgNonExplicit) {
  const auto fs = check("src/core/x.hpp",
                        "#pragma once\n"
                        "class Foo {\n"
                        " public:\n"
                        "  Foo(int x);\n"
                        "};\n");
  EXPECT_TRUE(fires(fs, "explicit-ctor"));
  EXPECT_EQ(line_of(fs, "explicit-ctor"), 4);
}

TEST(ExplicitCtor, FlagsDefaultedTrailingParams) {
  // Callable with one argument even though it has two parameters.
  EXPECT_TRUE(fires(check("src/core/x.hpp",
                          "#pragma once\n"
                          "class Foo {\n"
                          " public:\n"
                          "  Foo(int x, int y = 0);\n"
                          "};\n"),
                    "explicit-ctor"));
}

TEST(ExplicitCtor, AcceptsSanctionedForms) {
  const std::string good =
      "#pragma once\n"
      "#include <initializer_list>\n"
      "class Foo {\n"
      " public:\n"
      "  Foo() = default;\n"                          // zero-arg
      "  explicit Foo(int x);\n"                      // explicit
      "  Foo(const Foo& other);\n"                    // copy
      "  Foo(Foo&& other) noexcept;\n"                // move
      "  Foo(std::initializer_list<int> xs);\n"       // init-list
      "  Foo(int a, int b);\n"                        // two-arg
      "  Foo(double) = delete;\n"                     // deleted
      "};\n";
  EXPECT_FALSE(fires(check("src/core/x.hpp", good), "explicit-ctor"));
}

TEST(ExplicitCtor, ScopedToSrc) {
  const std::string bad =
      "class Foo {\n public:\n  Foo(int x);\n};\n";
  EXPECT_FALSE(fires(check("tests/helper.hpp", bad), "explicit-ctor"));
  EXPECT_FALSE(fires(check("bench/bench_util.hpp", bad), "explicit-ctor"));
}

// --------------------------------------------------------- virtual-dtor

TEST(VirtualDtor, FlagsPolymorphicBaseWithoutVirtualDtor) {
  const auto fs = check("src/core/x.hpp",
                        "#pragma once\n"
                        "class Base {\n"
                        " public:\n"
                        "  virtual void run() = 0;\n"
                        "};\n");
  EXPECT_TRUE(fires(fs, "virtual-dtor"));
  EXPECT_EQ(line_of(fs, "virtual-dtor"), 2);
}

TEST(VirtualDtor, AcceptsVirtualOrProtectedDtorOrDerived) {
  EXPECT_FALSE(fires(check("src/core/x.hpp",
                           "#pragma once\n"
                           "class Base {\n"
                           " public:\n"
                           "  virtual ~Base() = default;\n"
                           "  virtual void run() = 0;\n"
                           "};\n"),
                     "virtual-dtor"));
  EXPECT_FALSE(fires(check("src/core/x.hpp",
                           "#pragma once\n"
                           "class Base {\n"
                           " public:\n"
                           "  virtual void run() = 0;\n"
                           " protected:\n"
                           "  ~Base() = default;\n"
                           "};\n"),
                     "virtual-dtor"));
  // Derived classes inherit dtor virtuality from their base.
  EXPECT_FALSE(fires(check("src/core/x.hpp",
                           "#pragma once\n"
                           "class Impl : public Base {\n"
                           " public:\n"
                           "  virtual void run() override;\n"
                           "};\n"),
                     "virtual-dtor"));
  // Final classes cannot be deleted through a derived handle.
  EXPECT_FALSE(fires(check("src/core/x.hpp",
                           "#pragma once\n"
                           "class Leaf final {\n"
                           " public:\n"
                           "  virtual void run();\n"
                           "};\n"),
                     "virtual-dtor"));
}

TEST(VirtualDtor, NonPolymorphicClassesAreFine) {
  EXPECT_FALSE(fires(check("src/core/x.hpp",
                           "#pragma once\n"
                           "struct Plain { int x; void f(); };\n"),
                     "virtual-dtor"));
}

// ------------------------------------------------------------ allowlist

TEST(Allowlist, SuppressesByExactPathAndPrefix) {
  const Allowlist allow = parse_allowlist(
      "determinism src/core/pipeline.cpp  # reviewed clock read\n"
      "std-endl    src/obs/               # exposition writer flushes\n");
  ASSERT_TRUE(allow.errors.empty());
  EXPECT_TRUE(check_source("src/core/pipeline.cpp",
                           "int f() { return rand(); }\n", allow)
                  .empty());
  EXPECT_TRUE(check_source("src/obs/export.cpp",
                           "void f() { std::cout << std::endl; }\n", allow)
                  .empty());
  // Other files are still caught.
  EXPECT_FALSE(check_source("src/core/metrics.cpp",
                            "int f() { return rand(); }\n", allow)
                   .empty());
}

TEST(Allowlist, MarksUsedEntries) {
  const Allowlist allow = parse_allowlist(
      "determinism src/core/pipeline.cpp  # reviewed\n"
      "std-endl    src/core/pipeline.cpp  # never fires\n");
  std::vector<bool> used;
  check_source("src/core/pipeline.cpp", "int f() { return rand(); }\n", allow,
               &used);
  ASSERT_EQ(used.size(), 2u);
  EXPECT_TRUE(used[0]);
  EXPECT_FALSE(used[1]);
}

TEST(Allowlist, RejectsEntriesWithoutReasonOrUnknownRule) {
  EXPECT_FALSE(parse_allowlist("determinism src/core/pipeline.cpp\n")
                   .errors.empty());
  EXPECT_FALSE(
      parse_allowlist("not-a-rule src/core/pipeline.cpp # reason\n")
          .errors.empty());
  EXPECT_FALSE(
      parse_allowlist("determinism src/a.cpp extra-field # reason\n")
          .errors.empty());
  // Comments and blank lines are fine; '*' is a valid rule wildcard.
  const Allowlist ok = parse_allowlist(
      "# header comment\n"
      "\n"
      "* src/generated/  # third-party generated code\n");
  EXPECT_TRUE(ok.errors.empty());
  ASSERT_EQ(ok.entries.size(), 1u);
  EXPECT_EQ(ok.entries[0].rule, "*");
}

// The shipped allowlist must itself parse cleanly.
TEST(Allowlist, ShippedAllowlistParses) {
#ifdef RESMON_SOURCE_DIR
  std::ifstream in(std::string(RESMON_SOURCE_DIR) +
                   "/tools/lint_allowlist.txt");
  ASSERT_TRUE(in.good());
  std::ostringstream ss;
  ss << in.rdbuf();
  const Allowlist allow = parse_allowlist(ss.str());
  for (const auto& e : allow.errors) ADD_FAILURE() << e;
  EXPECT_FALSE(allow.entries.empty());
#else
  GTEST_SKIP() << "RESMON_SOURCE_DIR not defined";
#endif
}

// ----------------------------------------------------- mutex-annotation

TEST(MutexAnnotation, FlagsBareDeclarationsInSrc) {
  const auto fs = check("src/core/worker.hpp",
                        "class W {\n"
                        "  std::mutex m_;\n"
                        "  std::condition_variable cv_;\n"
                        "  std::shared_mutex rw_;\n"
                        "};\n");
  EXPECT_TRUE(fires(fs, "mutex-annotation"));
  EXPECT_EQ(line_of(fs, "mutex-annotation"), 2);
  EXPECT_EQ(std::count_if(
                fs.begin(), fs.end(),
                [](const Finding& f) { return f.rule == "mutex-annotation"; }),
            3);
}

TEST(MutexAnnotation, AnnotatedWrappersAndUsesAreFine) {
  // The annotated wrapper types, RESMON_-annotated raw members, and mere
  // *uses* of the std types (references, template args) stay silent.
  EXPECT_FALSE(fires(check("src/core/worker.hpp",
                           "class W {\n"
                           "  Mutex mu_;\n"
                           "  CondVar cv_;\n"
                           "  int queue_ RESMON_GUARDED_BY(mu_);\n"
                           "};\n"),
                     "mutex-annotation"));
  EXPECT_FALSE(fires(check("src/core/worker.cpp",
                           "void f(std::mutex& mu) {\n"
                           "  std::unique_lock<std::mutex> lock(mu);\n"
                           "  std::mutex* p = &mu;\n"
                           "}\n"),
                     "mutex-annotation"));
}

TEST(MutexAnnotation, ScopedToSrcAndInlineSuppressible) {
  const std::string bad = "class W { std::mutex m_; };\n";
  EXPECT_FALSE(fires(check("tests/test_worker.cpp", bad), "mutex-annotation"));
  EXPECT_FALSE(fires(check("bench/micro_worker.cpp", bad),
                     "mutex-annotation"));
  EXPECT_FALSE(fires(
      check("src/core/worker.hpp",
            "class W {\n"
            "  // resmon-lint-allow(mutex-annotation): external lock order\n"
            "  std::mutex m_;\n"
            "};\n"),
      "mutex-annotation"));
}

// -------------------------------------------------------------- layering

LayerGraph two_layers() {
  LayerGraph g = parse_layers(
      "common -> {}\n"
      "obs -> {common}\n"
      "net -> {common, obs}\n");
  EXPECT_TRUE(g.errors.empty());
  return g;
}

TEST(Layering, FlagsOutOfLayerInclude) {
  const LayerGraph g = two_layers();
  const auto fs = run_rules("src/obs/metrics.cpp",
                            lex("#include \"common/error.hpp\"\n"
                                "#include \"net/controller.hpp\"\n"),
                            &g);
  ASSERT_TRUE(fires(fs, "layering"));
  EXPECT_EQ(line_of(fs, "layering"), 2);
}

TEST(Layering, DeclaredDepsSelfAndSystemIncludesAreFine) {
  const LayerGraph g = two_layers();
  EXPECT_FALSE(fires(run_rules("src/net/controller.cpp",
                               lex("#include <vector>\n"
                                   "#include \"net/wire.hpp\"\n"
                                   "#include \"obs/metrics.hpp\"\n"
                                   "#include \"common/error.hpp\"\n"),
                               &g),
                     "layering"));
  // Files outside src/ and non-module includes are not constrained.
  EXPECT_FALSE(fires(run_rules("tests/test_net.cpp",
                               lex("#include \"net/controller.hpp\"\n"), &g),
                     "layering"));
}

TEST(Layering, UndeclaredModuleIsAFinding) {
  const LayerGraph g = two_layers();
  const auto fs = run_rules("src/rogue/new_module.cpp",
                            lex("#include \"common/error.hpp\"\n"), &g);
  ASSERT_TRUE(fires(fs, "layering"));
  EXPECT_EQ(line_of(fs, "layering"), 1);
}

TEST(Layering, InertWithoutAGraph) {
  EXPECT_FALSE(fires(run_rules("src/obs/metrics.cpp",
                               lex("#include \"net/controller.hpp\"\n"),
                               nullptr),
                     "layering"));
  LayerGraph broken = parse_layers("not a layer line\n");
  ASSERT_FALSE(broken.errors.empty());
  EXPECT_FALSE(fires(run_rules("src/obs/metrics.cpp",
                               lex("#include \"net/controller.hpp\"\n"),
                               &broken),
                     "layering"));
}

TEST(Layering, AllowlistSuppressesOutOfLayerInclude) {
  const LayerGraph g = two_layers();
  const Allowlist allow = parse_allowlist(
      "layering src/obs/legacy.cpp  # migration in flight\n");
  ASSERT_TRUE(allow.errors.empty());
  EXPECT_TRUE(check_source("src/obs/legacy.cpp",
                           "#include \"net/controller.hpp\"\n", allow,
                           nullptr, &g)
                  .empty());
  EXPECT_FALSE(check_source("src/obs/metrics.cpp",
                            "#include \"net/controller.hpp\"\n", allow,
                            nullptr, &g)
                   .empty());
}

TEST(Layering, ParseRejectsMalformedGraphs) {
  EXPECT_FALSE(parse_layers("obs\n").errors.empty());
  EXPECT_FALSE(parse_layers("obs -> common\n").errors.empty());
  EXPECT_FALSE(parse_layers("obs -> {common\n").errors.empty());
  // Duplicate module, undeclared dependency, self-dependency.
  EXPECT_FALSE(
      parse_layers("obs -> {}\nobs -> {}\n").errors.empty());
  EXPECT_FALSE(parse_layers("obs -> {ghost}\n").errors.empty());
  EXPECT_FALSE(parse_layers("obs -> {obs}\n").errors.empty());
}

TEST(Layering, ParseDetectsDependencyCycles) {
  const LayerGraph g = parse_layers(
      "a -> {b}\n"
      "b -> {c}\n"
      "c -> {a}\n");
  ASSERT_FALSE(g.errors.empty());
  EXPECT_NE(g.errors[0].find("dependency cycle"), std::string::npos);
}

TEST(Layering, IncludeCycleDetection) {
  // a.hpp -> b.hpp -> a.hpp is a cycle even though each edge individually
  // stays inside one module (so the DAG rule cannot see it).
  const auto fs = check_include_cycles(
      {{"src/common/a.hpp", "#include \"common/b.hpp\"\n"},
       {"src/common/b.hpp", "#include \"common/a.hpp\"\n"},
       {"src/common/c.hpp", "#include \"common/a.hpp\"\n"}});
  ASSERT_FALSE(fs.empty());
  EXPECT_EQ(fs[0].rule, "layering");
  EXPECT_NE(fs[0].message.find("include cycle"), std::string::npos);
  // Acyclic graphs are quiet.
  EXPECT_TRUE(check_include_cycles(
                  {{"src/common/a.hpp", "#include \"common/b.hpp\"\n"},
                   {"src/common/b.hpp", "#include <vector>\n"}})
                  .empty());
}

// The shipped layer graph must itself parse cleanly.
TEST(Layering, ShippedLayerGraphParses) {
#ifdef RESMON_SOURCE_DIR
  std::ifstream in(std::string(RESMON_SOURCE_DIR) + "/tools/lint_layers.txt");
  ASSERT_TRUE(in.good());
  std::ostringstream ss;
  ss << in.rdbuf();
  const LayerGraph g = parse_layers(ss.str());
  for (const auto& e : g.errors) ADD_FAILURE() << e;
  EXPECT_FALSE(g.deps.empty());
  // Every module must be reachable from the leaf layer: common exists and
  // depends on nothing.
  ASSERT_TRUE(g.deps.count("common"));
  EXPECT_TRUE(g.deps.at("common").empty());
#else
  GTEST_SKIP() << "RESMON_SOURCE_DIR not defined";
#endif
}

}  // namespace
}  // namespace resmon::lint
