// Equivalence tests for the SoA hot-path kernels (common/kernels.hpp).
//
// The SIMD path is required to be BIT-IDENTICAL to the scalar path — the
// golden traces pin the scalar results, so any divergence is a correctness
// bug, not a tolerance question. See "Memory layout & SIMD kernels" in
// DESIGN.md for why the vectorization (one point per lane, dim-order
// accumulation preserved) makes that guarantee possible.
#include "common/kernels.hpp"

#include <cmath>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/kmeans.hpp"
#include "common/rng.hpp"
#include "common/soa.hpp"

namespace resmon {
namespace {

using cluster::KMeansResult;

/// Restores the globally selected kernel path on scope exit.
class PathGuard {
 public:
  PathGuard() : saved_(kern::active_path()) {}
  ~PathGuard() { kern::set_path(saved_); }

 private:
  kern::Path saved_;
};

bool bitwise_equal(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

Matrix random_points(std::size_t n, std::size_t d, Rng& rng) {
  Matrix points(n, d);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t c = 0; c < d; ++c) {
      points(i, c) = rng.normal(0.0, 1.0);
    }
  }
  return points;
}

/// Runs nearest_centroids on both paths and asserts bitwise equality.
void check_nearest_centroids(std::size_t n, std::size_t d, std::size_t k) {
  if (!kern::simd_supported()) GTEST_SKIP() << "no AVX2 on this host";
  PathGuard guard;
  Rng rng(17 + n + 10 * d + 100 * k);
  const Matrix points = random_points(n, d, rng);
  const Matrix centroids = random_points(k, d, rng);
  SoaMatrix soa;
  soa.assign_from(points);

  std::vector<std::uint32_t> j_scalar(n), j_simd(n);
  std::vector<double> d2_scalar(n), d2_simd(n);
  kern::set_path(kern::Path::kScalar);
  kern::nearest_centroids(soa.col_ptrs(), d, centroids.data().data(), k, 0, n,
                          j_scalar.data(), d2_scalar.data());
  kern::set_path(kern::Path::kSimd);
  kern::nearest_centroids(soa.col_ptrs(), d, centroids.data().data(), k, 0, n,
                          j_simd.data(), d2_simd.data());
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(j_scalar[i], j_simd[i]) << "point " << i;
    EXPECT_TRUE(bitwise_equal(d2_scalar[i], d2_simd[i])) << "point " << i;
    EXPECT_FALSE(std::isnan(d2_scalar[i])) << "point " << i;
  }
}

TEST(Kernels, NearestCentroidsMatchesScalarBitwise) {
  check_nearest_centroids(257, 3, 5);
}

TEST(Kernels, NearestCentroidsScalarDimension) {
  check_nearest_centroids(300, 1, 10);
}

TEST(Kernels, NearestCentroidsWindowShorterThanVectorWidth) {
  // Fewer points than any unroll/vector width: the tail path must agree.
  for (std::size_t n = 1; n <= 7; ++n) check_nearest_centroids(n, 2, 3);
}

TEST(Kernels, NearestCentroidsOneClusterPerPoint) {
  // K == n (every point its own cluster) exercises the densest argmin.
  check_nearest_centroids(16, 2, 16);
}

TEST(Kernels, MinDistanceUpdateMatchesScalarBitwise) {
  if (!kern::simd_supported()) GTEST_SKIP() << "no AVX2 on this host";
  PathGuard guard;
  Rng rng(41);
  const std::size_t n = 129;
  const std::size_t d = 4;
  const Matrix points = random_points(n, d, rng);
  const Matrix c = random_points(1, d, rng);
  SoaMatrix soa;
  soa.assign_from(points);

  std::vector<double> scalar(n, 1e300), simd(n, 1e300);
  kern::set_path(kern::Path::kScalar);
  kern::min_distance_update(soa.col_ptrs(), d, c.data().data(), 0, n,
                            scalar.data());
  kern::set_path(kern::Path::kSimd);
  kern::min_distance_update(soa.col_ptrs(), d, c.data().data(), 0, n,
                            simd.data());
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_TRUE(bitwise_equal(scalar[i], simd[i])) << "point " << i;
  }
}

TEST(Kernels, ArimaKernelsMatchScalarBitwise) {
  if (!kern::simd_supported()) GTEST_SKIP() << "no AVX2 on this host";
  PathGuard guard;
  Rng rng(43);
  const std::size_t n = 203;
  std::vector<double> w(n);
  for (double& v : w) v = rng.normal(0.5, 0.2);

  std::vector<double> centered_scalar(n), centered_simd(n);
  std::vector<double> e_scalar(w), e_simd(w);
  kern::set_path(kern::Path::kScalar);
  kern::subtract_mean(w.data(), 0.37, n, centered_scalar.data());
  kern::axpy_lagged(0.81, w.data(), 3, n, e_scalar.data());
  kern::set_path(kern::Path::kSimd);
  kern::subtract_mean(w.data(), 0.37, n, centered_simd.data());
  kern::axpy_lagged(0.81, w.data(), 3, n, e_simd.data());
  for (std::size_t t = 0; t < n; ++t) {
    EXPECT_TRUE(bitwise_equal(centered_scalar[t], centered_simd[t])) << t;
    EXPECT_TRUE(bitwise_equal(e_scalar[t], e_simd[t])) << t;
  }
}

TEST(Kernels, ReindexKernelsMatchScalarBitwise) {
  if (!kern::simd_supported()) GTEST_SKIP() << "no AVX2 on this host";
  PathGuard guard;
  Rng rng(47);
  const std::size_t n = 211;
  const std::size_t k = 7;
  const std::size_t lookbacks = 3;
  std::vector<std::vector<std::size_t>> past(lookbacks,
                                             std::vector<std::size_t>(n));
  for (auto& pass : past) {
    for (std::size_t i = 0; i < n; ++i) {
      pass[i] = static_cast<std::size_t>(rng.uniform() * k) % k;
    }
  }
  std::vector<std::size_t> fresh(n);
  for (std::size_t i = 0; i < n; ++i) {
    fresh[i] = static_cast<std::size_t>(rng.uniform() * k) % k;
  }

  std::vector<std::uint8_t> mask_scalar(n * k, 1), mask_simd(n * k, 1);
  std::vector<double> w_scalar(k * k, 0.0), w_simd(k * k, 0.0);
  kern::set_path(kern::Path::kScalar);
  for (const auto& pass : past) {
    kern::history_mask(pass.data(), k, 0, n, mask_scalar.data());
  }
  kern::similarity_accumulate(fresh.data(), mask_scalar.data(), k, 0, n,
                              w_scalar.data());
  kern::set_path(kern::Path::kSimd);
  for (const auto& pass : past) {
    kern::history_mask(pass.data(), k, 0, n, mask_simd.data());
  }
  kern::similarity_accumulate(fresh.data(), mask_simd.data(), k, 0, n,
                              w_simd.data());

  EXPECT_EQ(mask_scalar, mask_simd);
  for (std::size_t c = 0; c < k * k; ++c) {
    EXPECT_TRUE(bitwise_equal(w_scalar[c], w_simd[c])) << "cell " << c;
  }
  // And against the branchy reference loops the kernels replaced.
  std::vector<std::uint8_t> mask_ref(n * k, 1);
  for (const auto& pass : past) {
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < k; ++j) {
        if (pass[i] != j) mask_ref[i * k + j] = 0;
      }
    }
  }
  EXPECT_EQ(mask_ref, mask_scalar);
  std::vector<double> w_ref(k * k, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < k; ++j) {
      if (mask_ref[i * k + j] != 0) w_ref[fresh[i] * k + j] += 1.0;
    }
  }
  for (std::size_t c = 0; c < k * k; ++c) {
    EXPECT_TRUE(bitwise_equal(w_ref[c], w_scalar[c])) << "cell " << c;
  }
}

/// End-to-end: a whole K-means run must be bit-identical across paths.
TEST(Kernels, KMeansIdenticalAcrossPaths) {
  if (!kern::simd_supported()) GTEST_SKIP() << "no AVX2 on this host";
  PathGuard guard;
  const Matrix points = [] {
    Rng rng(7);
    return random_points(400, 3, rng);
  }();

  kern::set_path(kern::Path::kScalar);
  Rng rng_scalar(11);
  const KMeansResult scalar = cluster::kmeans(points, 6, rng_scalar);
  kern::set_path(kern::Path::kSimd);
  Rng rng_simd(11);
  const KMeansResult simd = cluster::kmeans(points, 6, rng_simd);

  EXPECT_EQ(scalar.assignment, simd.assignment);
  EXPECT_EQ(scalar.iterations, simd.iterations);
  EXPECT_TRUE(bitwise_equal(scalar.inertia, simd.inertia));
  ASSERT_EQ(scalar.centroids.rows(), simd.centroids.rows());
  for (std::size_t j = 0; j < scalar.centroids.rows(); ++j) {
    for (std::size_t c = 0; c < scalar.centroids.cols(); ++c) {
      EXPECT_TRUE(
          bitwise_equal(scalar.centroids(j, c), simd.centroids(j, c)))
          << "centroid " << j << " dim " << c;
    }
  }
}

TEST(Kernels, SoaMatrixRoundTrips) {
  Rng rng(3);
  const Matrix m = random_points(13, 4, rng);
  SoaMatrix soa;
  soa.assign_from(m);
  ASSERT_EQ(soa.rows(), m.rows());
  ASSERT_EQ(soa.cols(), m.cols());
  for (std::size_t i = 0; i < m.rows(); ++i) {
    for (std::size_t c = 0; c < m.cols(); ++c) {
      EXPECT_EQ(soa(i, c), m(i, c));
      EXPECT_EQ(soa.col(c)[i], m(i, c));
      EXPECT_EQ(soa.col_ptrs()[c][i], m(i, c));
    }
  }
}

TEST(Kernels, PathSelectionResolves) {
  // active_path() reports the path that will actually run: explicit
  // selections round-trip, kAuto resolves to the host's best path.
  PathGuard guard;
  kern::set_path(kern::Path::kScalar);
  EXPECT_EQ(kern::active_path(), kern::Path::kScalar);
  kern::set_path(kern::Path::kAuto);
  EXPECT_EQ(kern::active_path(), kern::simd_supported()
                                     ? kern::Path::kSimd
                                     : kern::Path::kScalar);
}

}  // namespace
}  // namespace resmon
