#include "cluster/baselines.hpp"

#include <set>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "trace/synthetic.hpp"

namespace resmon::cluster {
namespace {

trace::InMemoryTrace small_trace() {
  trace::SyntheticProfile p = trace::alibaba_profile();
  p.num_nodes = 12;
  p.num_steps = 80;
  return trace::generate(p, 42);
}

TEST(StaticClustering, AssignmentIsFixed) {
  const trace::InMemoryTrace t = small_trace();
  StaticClustering sc(t, 0, 3, 1);
  EXPECT_EQ(sc.assignment().size(), t.num_nodes());
  for (const std::size_t a : sc.assignment()) EXPECT_LT(a, 3u);
}

TEST(StaticClustering, AtRecomputesCentroidsFromSnapshot) {
  const trace::InMemoryTrace t = small_trace();
  StaticClustering sc(t, 0, 2, 2);
  Matrix snapshot(t.num_nodes(), 1);
  for (std::size_t i = 0; i < t.num_nodes(); ++i) snapshot(i, 0) = 0.5;
  const Clustering c = sc.at(snapshot);
  // All snapshot values equal -> every non-empty centroid is 0.5.
  std::set<std::size_t> used(c.assignment.begin(), c.assignment.end());
  for (const std::size_t j : used) {
    EXPECT_NEAR(c.centroids(j, 0), 0.5, 1e-12);
  }
}

TEST(StaticClustering, ValidatesArguments) {
  const trace::InMemoryTrace t = small_trace();
  EXPECT_THROW(StaticClustering(t, 5, 2, 1), InvalidArgument);
  EXPECT_THROW(StaticClustering(t, 0, 0, 1), InvalidArgument);
  EXPECT_THROW(StaticClustering(t, 0, 100, 1), InvalidArgument);
  StaticClustering sc(t, 0, 2, 1);
  EXPECT_THROW(sc.at(Matrix(3, 1)), InvalidArgument);
}

TEST(StaticClustering, GroupsSimilarSeriesTogether) {
  // Build a trace with two obvious node groups (low and high).
  trace::InMemoryTrace t(6, 50, 1);
  for (std::size_t step = 0; step < 50; ++step) {
    for (std::size_t i = 0; i < 3; ++i) t.set_value(i, step, 0, 0.2);
    for (std::size_t i = 3; i < 6; ++i) t.set_value(i, step, 0, 0.8);
  }
  StaticClustering sc(t, 0, 2, 3);
  EXPECT_EQ(sc.assignment()[0], sc.assignment()[1]);
  EXPECT_EQ(sc.assignment()[0], sc.assignment()[2]);
  EXPECT_EQ(sc.assignment()[3], sc.assignment()[4]);
  EXPECT_NE(sc.assignment()[0], sc.assignment()[3]);
}

TEST(MinimumDistance, CentroidsAreNodeValues) {
  MinimumDistanceClustering md(3, 7);
  Matrix snapshot(10, 1);
  for (std::size_t i = 0; i < 10; ++i) {
    snapshot(i, 0) = static_cast<double>(i) / 10.0;
  }
  const Clustering c = md.at(snapshot);
  // Each centroid must equal some node's snapshot value.
  for (std::size_t j = 0; j < 3; ++j) {
    bool found = false;
    for (std::size_t i = 0; i < 10 && !found; ++i) {
      found = std::abs(c.centroids(j, 0) - snapshot(i, 0)) < 1e-12;
    }
    EXPECT_TRUE(found) << "centroid " << j;
  }
}

TEST(MinimumDistance, AssignsToNearestMonitor) {
  MinimumDistanceClustering md(2, 3);
  Matrix snapshot(6, 1);
  for (std::size_t i = 0; i < 3; ++i) snapshot(i, 0) = 0.1;
  for (std::size_t i = 3; i < 6; ++i) snapshot(i, 0) = 0.9;
  const Clustering c = md.at(snapshot);
  for (std::size_t i = 0; i < 6; ++i) {
    const double own =
        squared_distance(snapshot.row(i), c.centroids.row(c.assignment[i]));
    for (std::size_t j = 0; j < 2; ++j) {
      EXPECT_LE(own, squared_distance(snapshot.row(i), c.centroids.row(j)) +
                         1e-12);
    }
  }
}

TEST(MinimumDistance, SelectionChangesBetweenCalls) {
  MinimumDistanceClustering md(2, 11);
  Matrix snapshot(30, 1);
  Rng rng(5);
  for (std::size_t i = 0; i < 30; ++i) snapshot(i, 0) = rng.uniform();
  const Clustering a = md.at(snapshot);
  bool any_diff = false;
  for (int trial = 0; trial < 5 && !any_diff; ++trial) {
    const Clustering b = md.at(snapshot);
    any_diff = b.centroids(0, 0) != a.centroids(0, 0) ||
               b.centroids(1, 0) != a.centroids(1, 0);
  }
  EXPECT_TRUE(any_diff);  // random re-selection each step
}

TEST(MinimumDistance, ValidatesArguments) {
  EXPECT_THROW(MinimumDistanceClustering(0, 1), InvalidArgument);
  MinimumDistanceClustering md(5, 1);
  EXPECT_THROW(md.at(Matrix(3, 1)), InvalidArgument);
}

}  // namespace
}  // namespace resmon::cluster
