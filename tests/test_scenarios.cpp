// Scenario-pack tests: the .scn grammar, the assertion evaluator, the
// runner's determinism, and — the regression gate — every shipped pack
// under scenarios/ must pass exactly as `resmon scenario run` would run it.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "core/metrics.hpp"
#include "core/pipeline.hpp"
#include "golden_fixture.hpp"
#include "scenario/runner.hpp"
#include "scenario/scenario_spec.hpp"
#include "trace/synthetic.hpp"

namespace resmon::scenario {
namespace {

// A fast in-process scenario shared by the runner tests: 8 nodes, 120
// steps, sample-hold forecasts. Tests append their own [assert] lines.
constexpr char kBaseSpec[] = R"(
name = unit
[trace]
profile = google
nodes = 8
steps = 120
seed = 4
[pipeline]
policy = adaptive
b = 0.3
k = 3
model = hold
initial = 20
retrain = 48
seed = 5
[run]
sample_every = 15
[assert]
)";

ScenarioSpec spec_with(const std::string& assertions) {
  return ScenarioSpec::parse_string(std::string(kBaseSpec) + assertions);
}

template <typename Fn>
void expect_throw_containing(Fn fn, const std::string& needle) {
  try {
    fn();
    FAIL() << "expected InvalidArgument containing '" << needle << "'";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << e.what();
  }
}

std::filesystem::path scenarios_dir() {
  return std::filesystem::path(RESMON_SOURCE_DIR) / "scenarios";
}

std::vector<std::filesystem::path> shipped_packs() {
  std::vector<std::filesystem::path> packs;
  for (const auto& entry :
       std::filesystem::directory_iterator(scenarios_dir())) {
    if (entry.path().extension() == ".scn") packs.push_back(entry.path());
  }
  std::sort(packs.begin(), packs.end());
  return packs;
}

// ---- grammar ---------------------------------------------------------------

TEST(ScenarioSpecParse, FullInProcessGrammarRoundTrips) {
  const ScenarioSpec spec = ScenarioSpec::parse_string(R"(
# leading comment
name = full           # trailing comment
description = all the knobs

[trace]
profile = bitbrains
nodes = 12
steps = 200
seed = 3
spike_probability = 0.04

[pipeline]
policy = deadband
b = 0.25
k = 5
model = holt-winters
initial = 40
retrain = 50
temporal_window = 2
threads = 4
seed = 9

[faults]
spec = dup=0.2;seed=5

[run]
steps = 150
horizons = 1, 6, 24
sample_every = 5
baseline_compare = true

[assert]
resmon_scenario_steps == 150
resmon_scenario_rmse{h="6"} in 0.1 +- 0.05
resmon_collect_sends_total nondecreasing slack 0.5
)");
  EXPECT_EQ(spec.name, "full");
  EXPECT_EQ(spec.profile, "bitbrains");
  EXPECT_EQ(spec.nodes, 12u);
  EXPECT_EQ(spec.trace_seed, 3u);
  ASSERT_EQ(spec.profile_overrides.size(), 1u);
  EXPECT_EQ(spec.profile_overrides[0].first, "spike_probability");
  EXPECT_EQ(spec.policy, collect::PolicyKind::kDeadband);
  EXPECT_DOUBLE_EQ(spec.max_frequency, 0.25);
  EXPECT_EQ(spec.num_clusters, 5u);
  EXPECT_EQ(spec.model, forecast::ForecasterKind::kHoltWinters);
  EXPECT_EQ(spec.temporal_window, 2u);
  EXPECT_EQ(spec.threads, 4u);
  EXPECT_FALSE(spec.faults.empty());
  EXPECT_FALSE(spec.socket_mode);
  EXPECT_EQ(spec.run_steps, 150u);
  EXPECT_EQ(spec.horizons, (std::vector<std::size_t>{1, 6, 24}));
  EXPECT_TRUE(spec.baseline_compare);

  ASSERT_EQ(spec.assertions.size(), 3u);
  EXPECT_EQ(spec.assertions[0].kind, Assertion::Kind::kCompare);
  EXPECT_EQ(spec.assertions[0].op, Assertion::Op::kEq);
  EXPECT_EQ(spec.assertions[1].kind, Assertion::Kind::kBand);
  EXPECT_EQ(spec.assertions[1].series_key(),
            "resmon_scenario_rmse{h=\"6\"}");
  EXPECT_DOUBLE_EQ(spec.assertions[1].tolerance, 0.05);
  EXPECT_EQ(spec.assertions[2].kind, Assertion::Kind::kMonotonic);
  EXPECT_TRUE(spec.assertions[2].increasing);
  EXPECT_DOUBLE_EQ(spec.assertions[2].slack, 0.5);
}

TEST(ScenarioSpecParse, SocketGrammarWithChurn) {
  const ScenarioSpec spec = ScenarioSpec::parse_string(R"(
name = sock
[controller]
stale_after_slots = 2
dead_after_slots = 5
ms_per_slot = 50
[churn]
kill = 1:10
restart = 1:20
)");
  EXPECT_TRUE(spec.socket_mode);
  EXPECT_EQ(spec.stale_after_slots, 2u);
  EXPECT_EQ(spec.dead_after_slots, 5u);
  EXPECT_EQ(spec.ms_per_slot, 50u);
  ASSERT_EQ(spec.churn.size(), 2u);
  EXPECT_FALSE(spec.churn[0].restart);
  EXPECT_EQ(spec.churn[0].node, 1u);
  EXPECT_EQ(spec.churn[0].slot, 10u);
  EXPECT_TRUE(spec.churn[1].restart);
  // Socket mode defaults to short-horizon scoring.
  EXPECT_EQ(spec.horizons, (std::vector<std::size_t>{1}));
}

TEST(ScenarioSpecParse, UnquotedLabelValuesMatchQuotedOnes) {
  const ScenarioSpec spec = ScenarioSpec::parse_string(R"(
name = labels
[assert]
resmon_scenario_rmse{h=1} > 0
resmon_scenario_rmse{h="1"} > 0
)");
  ASSERT_EQ(spec.assertions.size(), 2u);
  EXPECT_EQ(spec.assertions[0].series_key(),
            spec.assertions[1].series_key());
}

TEST(ScenarioSpecParse, ErrorsNameTheOffendingLine) {
  // The unknown section sits on line 3 of the snippet (origin "bad.scn").
  expect_throw_containing(
      [] {
        ScenarioSpec::parse_string("name = x\n\n[nope]\n", "bad.scn");
      },
      "bad.scn:3: unknown section [nope]");
  expect_throw_containing(
      [] {
        ScenarioSpec::parse_string(
            "name = x\n[pipeline]\nbudget = 0.3\n", "bad.scn");
      },
      "bad.scn:3: unknown [pipeline] key 'budget'");
  expect_throw_containing(
      [] {
        ScenarioSpec::parse_string(
            "name = x\n[trace]\nspikiness = 2\n", "bad.scn");
      },
      "not an overridable profile knob");
  expect_throw_containing(
      [] { ScenarioSpec::parse_string("name = x\n[trace]\nnodes = ten\n"); },
      "ten");
}

TEST(ScenarioSpecParse, CrossFieldValidation) {
  expect_throw_containing(
      [] { ScenarioSpec::parse_string("description = anon\n"); },
      "no 'name ='");
  expect_throw_containing(
      [] { ScenarioSpec::parse_string("name = x\n[churn]\nkill = 0:5\n"); },
      "[churn] requires a [controller] section");
  expect_throw_containing(
      [] {
        ScenarioSpec::parse_string(
            "name = x\n[controller]\nms_per_slot = 100\n");
      },
      "stale_after_slots >= 1");
  expect_throw_containing(
      [] {
        ScenarioSpec::parse_string(
            "name = x\n[controller]\nstale_after_slots = 1\n"
            "[churn]\nrestart = 2:30\n");
      },
      "restart of node 2 has no earlier kill");
  expect_throw_containing(
      [] {
        ScenarioSpec::parse_string(
            "name = x\n[controller]\nstale_after_slots = 1\n"
            "[faults]\nspec = dup=0.5\n");
      },
      "[faults] applies to the in-process link");
  expect_throw_containing(
      [] {
        ScenarioSpec::parse_string(
            "name = x\n[assert]\nresmon_x in 0.5 +- -0.1\n");
      },
      "negative tolerance");
  expect_throw_containing(
      [] { ScenarioSpec::parse_string("name = x\n[assert]\nresmon_x ~= 3\n"); },
      "expected 'METRIC <op> VALUE'");
}

TEST(ScenarioSpecParse, HostSectionGrammarAndValidation) {
  const ScenarioSpec spec = ScenarioSpec::parse_string(
      "name = x\n[host]\nsamples = 12\ninterval_ms = 5\n"
      "procfs_root = /tmp/fake\nbusy_iters = 7\n[pipeline]\nk = 1\n");
  EXPECT_TRUE(spec.host_mode);
  EXPECT_EQ(spec.host_samples, 12u);
  EXPECT_EQ(spec.host_interval_ms, 5u);
  EXPECT_EQ(spec.host_procfs_root, "/tmp/fake");
  EXPECT_EQ(spec.host_busy_iters, 7u);

  expect_throw_containing(
      [] {
        ScenarioSpec::parse_string("name = x\n[host]\ncadence = 5\n");
      },
      "unknown [host] key");
  expect_throw_containing(
      [] {
        ScenarioSpec::parse_string(
            "name = x\n[host]\n[controller]\nstale_after_slots = 1\n"
            "[pipeline]\nk = 1\n");
      },
      "[host] cannot be combined with [controller]");
  expect_throw_containing(
      [] {
        ScenarioSpec::parse_string(
            "name = x\n[host]\n[faults]\nspec = drop=0.5\n"
            "[pipeline]\nk = 1\n");
      },
      "[host] cannot be combined with [faults]");
  expect_throw_containing(
      [] {
        ScenarioSpec::parse_string(
            "name = x\n[host]\n[run]\nbaseline_compare = true\n"
            "[pipeline]\nk = 1\n");
      },
      "drop baseline_compare");
  expect_throw_containing(
      [] {
        ScenarioSpec::parse_string(
            "name = x\n[host]\nsamples = 1\n[pipeline]\nk = 1\n");
      },
      "samples >= 2");
  expect_throw_containing(
      [] { ScenarioSpec::parse_string("name = x\n[host]\n"); },
      "set k = 1");
}

// ---- runner & evaluator ----------------------------------------------------

TEST(ScenarioRunner, PassingAssertionsPass) {
  obs::MetricsRegistry registry;
  const ScenarioResult result = run(spec_with(R"(
resmon_scenario_steps == 120
resmon_scenario_traffic_fraction <= 1
resmon_scenario_rmse{h="1"} > 0
resmon_scenario_bytes_sent > 0
resmon_collect_sends_total nondecreasing
)"),
                                    registry);
  EXPECT_TRUE(result.passed);
  EXPECT_EQ(result.steps_run, 120u);
  EXPECT_EQ(result.first_failure(), nullptr);
  EXPECT_EQ(result.outcomes.size(), 5u);
}

TEST(ScenarioRunner, ViolatedAssertionReportsMetricExpectedActual) {
  obs::MetricsRegistry registry;
  const ScenarioResult result =
      run(spec_with("resmon_scenario_steps == 999\n"), registry);
  EXPECT_FALSE(result.passed);
  const AssertionOutcome* failure = result.first_failure();
  ASSERT_NE(failure, nullptr);
  EXPECT_EQ(failure->assertion.metric, "resmon_scenario_steps");
  EXPECT_NE(failure->expected.find("== 999"), std::string::npos);
  EXPECT_DOUBLE_EQ(failure->actual, 120.0);

  // The human report carries all three: metric name, expected, actual.
  std::ostringstream out;
  EXPECT_FALSE(print_report(result, out, /*verbose=*/false));
  const std::string text = out.str();
  EXPECT_NE(text.find("FAIL"), std::string::npos) << text;
  EXPECT_NE(text.find("resmon_scenario_steps"), std::string::npos) << text;
  EXPECT_NE(text.find("999"), std::string::npos) << text;
  EXPECT_NE(text.find("120"), std::string::npos) << text;
}

TEST(ScenarioRunner, MissingMetricIsAFailureNotACrash) {
  obs::MetricsRegistry registry;
  const ScenarioResult result =
      run(spec_with("resmon_no_such_family > 0\n"), registry);
  EXPECT_FALSE(result.passed);
  const AssertionOutcome* failure = result.first_failure();
  ASSERT_NE(failure, nullptr);
  EXPECT_FALSE(failure->found);
  std::ostringstream out;
  print_report(result, out, /*verbose=*/false);
  EXPECT_NE(out.str().find("metric not found"), std::string::npos)
      << out.str();
}

TEST(ScenarioRunner, BandAssertionChecksTolerance) {
  obs::MetricsRegistry pass_registry;
  EXPECT_TRUE(
      run(spec_with("resmon_scenario_steps in 120 +- 0.5\n"), pass_registry)
          .passed);
  obs::MetricsRegistry fail_registry;
  EXPECT_FALSE(
      run(spec_with("resmon_scenario_steps in 100 +- 5\n"), fail_registry)
          .passed);
}

TEST(ScenarioRunner, MonotonicViolationNamesTheSample) {
  // Cumulative sends can only grow, so "nonincreasing" must fail and name
  // the first sample where the series rose.
  obs::MetricsRegistry registry;
  const ScenarioResult result =
      run(spec_with("resmon_collect_sends_total nonincreasing\n"), registry);
  EXPECT_FALSE(result.passed);
  const AssertionOutcome* failure = result.first_failure();
  ASSERT_NE(failure, nullptr);
  EXPECT_NE(failure->expected.find("violated at sample"), std::string::npos)
      << failure->expected;
}

TEST(ScenarioRunner, RepeatedRunsAreBitIdentical) {
  obs::MetricsRegistry first;
  obs::MetricsRegistry second;
  run(spec_with(""), first);
  run(spec_with(""), second);
  const auto a = first.snapshot();
  const auto b = second.snapshot();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].name, b[i].name);
    EXPECT_EQ(a[i].labels, b[i].labels);
    // Wall-clock stage timings are the one legitimately nondeterministic
    // family; everything else must match bit for bit.
    if (a[i].name.find("_seconds") != std::string::npos) continue;
    EXPECT_EQ(a[i].value, b[i].value) << a[i].name << a[i].labels;
  }
}

TEST(ScenarioRunner, MatchesAHandRolledPipelineOnTheGoldenTrace) {
  // The runner must be exactly the library pipeline in a costume: the same
  // options on the same seeded trace (built via the shared golden fixture)
  // produce bit-identical RMSE and traffic accounting.
  obs::MetricsRegistry registry;
  const ScenarioResult result = run(spec_with(""), registry);
  ASSERT_TRUE(result.passed);

  const trace::InMemoryTrace trace =
      resmon::testing::make_golden_trace("google", 8, 120, 4);
  core::PipelineOptions options;
  options.policy = collect::PolicyKind::kAdaptive;
  options.max_frequency = 0.3;
  options.num_clusters = 3;
  options.forecaster = forecast::ForecasterKind::kSampleHold;
  options.schedule = {.initial_steps = 20, .retrain_interval = 48};
  options.seed = 5;
  core::MonitoringPipeline pipeline(trace, options);
  core::RmseAccumulator rmse;
  for (std::size_t t = 0; t < 120; ++t) {
    pipeline.step();
    if (t + 1 < 20 || t + 1 >= 120) continue;  // warm-up / no truth at h=1
    rmse.add(pipeline.rmse_at(1));
  }

  EXPECT_DOUBLE_EQ(
      registry.value("resmon_scenario_rmse", {{"h", "1"}}).value_or(-1.0),
      rmse.value());
  EXPECT_DOUBLE_EQ(
      registry.value("resmon_scenario_bytes_sent").value_or(-1.0),
      static_cast<double>(pipeline.collector().link().bytes_sent()));
  EXPECT_DOUBLE_EQ(
      registry.value("resmon_scenario_traffic_fraction").value_or(-1.0),
      pipeline.collector().average_actual_frequency());
}

// ---- shipped packs: the regression gate ------------------------------------

TEST(ShippedPacks, AtLeastFivePacksShip) {
  EXPECT_GE(shipped_packs().size(), 5u);
}

TEST(ShippedPacks, EveryNamedProfileExists) {
  // Drift test: a pack naming a profile that trace::profile_by_name no
  // longer knows must fail here, not at `resmon scenario run` time.
  for (const auto& path : shipped_packs()) {
    const ScenarioSpec spec = ScenarioSpec::parse_file(path.string());
    EXPECT_NO_THROW(trace::profile_by_name(spec.profile))
        << path << " names unknown profile '" << spec.profile << "'";
  }
}

TEST(ShippedPacks, AllPass) {
  for (const auto& path : shipped_packs()) {
    const ScenarioSpec spec = ScenarioSpec::parse_file(path.string());
    obs::MetricsRegistry registry;
    const ScenarioResult result = run(spec, registry);
    std::ostringstream report;
    print_report(result, report, /*verbose=*/true);
    EXPECT_TRUE(result.passed) << path << "\n" << report.str();
  }
}

}  // namespace
}  // namespace resmon::scenario
