// Socket runtime tests: the real TCP agent/controller path against
// 127.0.0.1, checked bit-for-bit against the in-process LoopbackLink path,
// plus the handshake-rejection and reconnect-backoff behavior.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "collect/fleet_collector.hpp"
#include "net/agent.hpp"
#include "net/controller.hpp"
#include "net/loopback.hpp"
#include "net/socket.hpp"
#include "net/wire.hpp"
#include "trace/synthetic.hpp"
#include "transport/channel.hpp"

namespace resmon::net {
namespace {

trace::InMemoryTrace make_trace(std::size_t nodes, std::size_t steps,
                                std::uint64_t seed) {
  trace::SyntheticProfile profile = trace::profile_by_name("alibaba");
  profile.num_nodes = nodes;
  profile.num_steps = steps;
  return trace::generate(profile, seed);
}

/// Everything the central store knows after a slot, exact doubles included.
struct StoreSnapshot {
  std::vector<std::vector<double>> values;
  std::vector<long long> steps;

  static StoreSnapshot of(const transport::CentralStore& store) {
    StoreSnapshot snap;
    for (std::size_t node = 0; node < store.num_nodes(); ++node) {
      if (store.has(node)) {
        snap.values.push_back(store.stored(node));
        snap.steps.push_back(
            static_cast<long long>(store.last_update_step(node)));
      } else {
        snap.values.emplace_back();
        snap.steps.push_back(-1);
      }
    }
    return snap;
  }

  bool operator==(const StoreSnapshot&) const = default;
};

TEST(NetSocket, TcpRunIsBitIdenticalToTheLoopbackLinkPath) {
  constexpr std::size_t kNodes = 6;
  constexpr std::size_t kSlots = 80;
  const trace::InMemoryTrace trace = make_trace(kNodes, kSlots, 7);
  const auto factory =
      collect::make_policy_factory(collect::PolicyKind::kAdaptive, 0.3);

  // Reference: the in-process path through the same wire codec.
  collect::FleetCollector reference(trace, factory, {}, nullptr,
                                    std::make_unique<LoopbackLink>());
  std::vector<StoreSnapshot> expected;
  for (std::size_t t = 0; t < kSlots; ++t) {
    reference.step(t);
    expected.push_back(StoreSnapshot::of(reference.store()));
  }

  // TCP: one controller, one OS thread per agent, same policies.
  ControllerOptions copts;
  copts.num_nodes = kNodes;
  copts.num_resources = trace.num_resources();
  Controller controller(Socket::listen_tcp("127.0.0.1", 0), copts);

  std::vector<std::thread> agents;
  for (std::size_t node = 0; node < kNodes; ++node) {
    agents.emplace_back([&, node] {
      AgentOptions aopts;
      aopts.port = controller.port();
      aopts.node = static_cast<std::uint32_t>(node);
      aopts.num_resources = static_cast<std::uint32_t>(trace.num_resources());
      Agent agent(aopts, factory());
      agent.connect();
      for (std::size_t t = 0; t < kSlots; ++t) {
        agent.observe(t, trace.measurement(node, t));
      }
    });
  }

  ASSERT_TRUE(controller.wait_for_agents(kNodes, 10000));
  transport::CentralStore store(kNodes, trace.num_resources());
  for (std::size_t t = 0; t < kSlots; ++t) {
    auto messages = controller.collect_slot(t, 10000);
    ASSERT_TRUE(messages.has_value()) << "slot " << t << " timed out";
    for (const auto& m : *messages) store.apply(m);
    EXPECT_EQ(StoreSnapshot::of(store), expected[t]) << "slot " << t;
  }
  for (std::thread& th : agents) th.join();
  EXPECT_EQ(controller.connections_rejected(), 0u);
  // One hello plus one frame per slot (measurement or heartbeat) per node.
  EXPECT_EQ(controller.frames_received(),
            static_cast<std::uint64_t>(kNodes * (kSlots + 1)));
}

TEST(NetSocket, WaitForAgentsCountsNodesWhoseSocketAlreadyClosed) {
  // A fast agent can push its whole run into the TCP buffer and exit before
  // the controller pumps even once; its buffered frames must still count
  // and collect. Emulated with a raw socket that never waits for the ack.
  ControllerOptions copts;
  copts.num_nodes = 1;
  copts.num_resources = 1;
  Controller controller(Socket::listen_tcp("127.0.0.1", 0), copts);
  {
    Socket sock = Socket::connect_tcp("127.0.0.1", controller.port(), 2000);
    ASSERT_TRUE(sock.write_all(
        wire::encode(wire::HelloFrame{.node = 0, .num_resources = 1}), 2000));
    for (std::size_t t = 0; t < 5; ++t) {
      transport::MeasurementMessage m;
      m.node = 0;
      m.step = t;
      m.values = {static_cast<double>(t)};
      ASSERT_TRUE(sock.write_all(wire::encode(m), 2000));
    }
  }  // socket closes here, before the controller has read anything

  ASSERT_TRUE(controller.wait_for_agents(1, 5000));
  EXPECT_EQ(controller.nodes_seen(), 1u);
  EXPECT_EQ(controller.connected_agents(), 0u);  // it is gone, after all
  for (std::size_t t = 0; t < 5; ++t) {
    auto messages = controller.collect_slot(t, 2000);
    ASSERT_TRUE(messages.has_value());
    ASSERT_EQ(messages->size(), 1u);
    EXPECT_EQ((*messages)[0].step, t);
    EXPECT_EQ((*messages)[0].values, std::vector<double>{double(t)});
  }
}

TEST(NetSocket, ConnectGivesUpAfterBoundedBackoffAttempts) {
  // Grab an ephemeral port, then close the listener so nothing serves it.
  std::uint16_t dead_port = 0;
  {
    Socket listener = Socket::listen_tcp("127.0.0.1", 0);
    dead_port = listener.local_port();
  }

  AgentOptions aopts;
  aopts.port = dead_port;
  aopts.num_resources = 1;
  aopts.max_reconnect_attempts = 3;
  aopts.initial_backoff_ms = 1;
  aopts.max_backoff_ms = 4;
  Agent agent(aopts, collect::make_policy_factory(
                         collect::PolicyKind::kAlways, 1.0)());
  EXPECT_THROW(agent.connect(), SocketError);
  EXPECT_FALSE(agent.connected());
  EXPECT_EQ(agent.reconnects(), 0u);
}

/// Pump the controller's loop from a second thread while the agent under
/// test runs its blocking handshake on this one.
class PumpThread {
 public:
  PumpThread(Controller& controller, std::size_t count, int timeout_ms)
      : thread_([&controller, count, timeout_ms] {
          controller.wait_for_agents(count, timeout_ms);
        }) {}
  ~PumpThread() { thread_.join(); }

 private:
  std::thread thread_;
};

TEST(NetSocket, HelloRejectionIsTerminalNotRetried) {
  ControllerOptions copts;
  copts.num_nodes = 2;
  copts.num_resources = 3;
  Controller controller(Socket::listen_tcp("127.0.0.1", 0), copts);

  AgentOptions aopts;
  aopts.port = controller.port();
  aopts.node = 7;  // out of range for a 2-node controller
  aopts.num_resources = 3;
  aopts.initial_backoff_ms = 1;
  Agent agent(aopts, collect::make_policy_factory(
                         collect::PolicyKind::kAlways, 1.0)());
  {
    PumpThread pump(controller, 1, 1500);
    EXPECT_THROW(agent.connect(), SocketError);
  }
  EXPECT_EQ(controller.nodes_seen(), 0u);
  EXPECT_GE(controller.connections_rejected(), 1u);
}

TEST(NetSocket, DimensionMismatchIsRejected) {
  ControllerOptions copts;
  copts.num_nodes = 2;
  copts.num_resources = 3;
  Controller controller(Socket::listen_tcp("127.0.0.1", 0), copts);

  AgentOptions aopts;
  aopts.port = controller.port();
  aopts.node = 0;
  aopts.num_resources = 2;  // controller expects 3
  aopts.initial_backoff_ms = 1;
  Agent agent(aopts, collect::make_policy_factory(
                         collect::PolicyKind::kAlways, 1.0)());
  {
    PumpThread pump(controller, 1, 1500);
    EXPECT_THROW(agent.connect(), SocketError);
  }
  EXPECT_EQ(controller.nodes_seen(), 0u);
}

TEST(NetSocket, NewerConnectionForTheSameNodeWinsOverTheStaleOne) {
  // The controller cannot tell a half-open zombie from a live connection
  // (lost RST, partition), so a fresh hello for an already-connected node
  // is authoritative: the old socket is dropped, the new one accepted.
  // Anything else makes reconnection terminal exactly when it matters.
  ControllerOptions copts;
  copts.num_nodes = 1;  // slot 0 completes on node 0's progress alone
  copts.num_resources = 1;
  Controller controller(Socket::listen_tcp("127.0.0.1", 0), copts);

  AgentOptions aopts;
  aopts.port = controller.port();
  aopts.node = 0;
  aopts.num_resources = 1;
  aopts.initial_backoff_ms = 1;
  const auto factory =
      collect::make_policy_factory(collect::PolicyKind::kAlways, 1.0);

  Agent first(aopts, factory());
  {
    PumpThread pump(controller, 1, 5000);
    first.connect();
  }
  ASSERT_TRUE(first.connected());

  // wait_for_agents(1) would return without pumping (node 0 was already
  // seen), so run the second handshake in a thread while the main thread
  // pumps through collect_slot until the measurement lands.
  Agent second(aopts, factory());
  const std::vector<double> x = {0.25};
  std::thread connector([&] {
    second.connect();  // must not throw: newest wins
    second.observe(0, x);
  });
  auto messages = controller.collect_slot(0, 10000);
  connector.join();

  ASSERT_TRUE(second.connected());
  EXPECT_EQ(controller.nodes_seen(), 1u);  // still one distinct node
  EXPECT_EQ(controller.connections_rejected(), 0u);
  ASSERT_TRUE(messages.has_value());
  ASSERT_EQ(messages->size(), 1u);
  EXPECT_EQ((*messages)[0].values, x);
  EXPECT_EQ(controller.connected_agents(), 1u);
}

TEST(NetSocket, SecondHelloOnOneStreamIsStillRejected) {
  // Newest-wins applies across connections, not within one: a stream that
  // already completed its handshake and hellos again is a protocol
  // violation and gets dropped.
  ControllerOptions copts;
  copts.num_nodes = 2;
  copts.num_resources = 1;
  Controller controller(Socket::listen_tcp("127.0.0.1", 0), copts);

  Socket sock = Socket::connect_tcp("127.0.0.1", controller.port(), 2000);
  const auto hello = wire::encode(wire::HelloFrame{.node = 0, .num_resources = 1});
  ASSERT_TRUE(sock.write_all(hello, 2000));
  ASSERT_TRUE(sock.write_all(hello, 2000));  // second hello, same stream
  ASSERT_TRUE(controller.wait_for_agents(1, 5000));
  // Pump until the violation is processed and the connection dropped.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (controller.connections_rejected() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    controller.collect_slot(0, 20);  // times out; pumps the loop
  }
  EXPECT_EQ(controller.connections_rejected(), 1u);
  EXPECT_EQ(controller.connected_agents(), 0u);
  EXPECT_EQ(controller.nodes_seen(), 1u);
}

TEST(NetSocket, AgentReconnectsAfterTheControllerRestarts) {
  ControllerOptions copts;
  copts.num_nodes = 1;
  copts.num_resources = 1;
  auto controller = std::make_unique<Controller>(
      Socket::listen_tcp("127.0.0.1", 0), copts);
  const std::uint16_t port = controller->port();

  AgentOptions aopts;
  aopts.port = port;
  aopts.node = 0;
  aopts.num_resources = 1;
  aopts.initial_backoff_ms = 1;
  aopts.max_backoff_ms = 50;
  aopts.max_reconnect_attempts = 20;
  Agent agent(aopts, collect::make_policy_factory(
                         collect::PolicyKind::kAlways, 1.0)());
  {
    PumpThread pump(*controller, 1, 5000);
    agent.connect();
  }
  ASSERT_TRUE(agent.connected());

  // Kill the controller (closes listener + connection), restart on the same
  // port (SO_REUSEADDR), and keep observing: the agent must notice the dead
  // connection, re-handshake, and deliver the later slots to the new
  // controller.
  controller.reset();
  controller = std::make_unique<Controller>(
      Socket::listen_tcp("127.0.0.1", port), copts);
  {
    PumpThread pump(*controller, 1, 10000);
    const std::vector<double> x = {0.5};
    for (std::size_t t = 0; t < 10; ++t) agent.observe(t, x);
  }
  EXPECT_GE(agent.reconnects(), 1u);
  EXPECT_EQ(controller->nodes_seen(), 1u);

  // Slot 9 was sent strictly after the re-handshake, so the new controller
  // must be able to collect it.
  auto messages = controller->collect_slot(9, 5000);
  ASSERT_TRUE(messages.has_value());
  ASSERT_EQ(messages->size(), 1u);
  EXPECT_EQ((*messages)[0].step, 9u);
}

}  // namespace
}  // namespace resmon::net
