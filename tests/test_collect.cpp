#include "collect/adaptive_transmitter.hpp"
#include "collect/fleet_collector.hpp"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "net/loopback.hpp"
#include "trace/trace.hpp"
#include "trace/synthetic.hpp"

namespace resmon::collect {
namespace {

std::vector<double> scalar(double v) { return {v}; }

TEST(AdaptiveTransmitter, ValidatesOptions) {
  EXPECT_THROW(AdaptiveTransmitter({.max_frequency = 0.0}), InvalidArgument);
  EXPECT_THROW(AdaptiveTransmitter({.max_frequency = 1.5}), InvalidArgument);
  EXPECT_THROW(AdaptiveTransmitter({.v0 = 0.0}), InvalidArgument);
  EXPECT_THROW(AdaptiveTransmitter({.gamma = 1.0}), InvalidArgument);
}

TEST(AdaptiveTransmitter, AlwaysTransmitsFirstMeasurement) {
  AdaptiveTransmitter tx({.max_frequency = 0.1});
  EXPECT_TRUE(tx.decide(0, scalar(0.5)));
  EXPECT_EQ(tx.transmissions(), 1u);
}

TEST(AdaptiveTransmitter, QueueFollowsEquation9) {
  AdaptiveTransmitter tx({.max_frequency = 0.3});
  tx.decide(0, scalar(0.5));  // transmits: Q += 1 - 0.3
  EXPECT_NEAR(tx.queue_length(), 0.7, 1e-12);
  // Large positive queue suppresses transmission: Q -= B.
  tx.decide(1, scalar(0.5));
  EXPECT_NEAR(tx.queue_length(), 0.4, 1e-12);
}

TEST(AdaptiveTransmitter, EmptyMeasurementThrows) {
  AdaptiveTransmitter tx({});
  EXPECT_THROW(tx.decide(0, std::vector<double>{}), InvalidArgument);
}

TEST(AdaptiveTransmitter, PenaltyIsMeanSquaredDeviation) {
  AdaptiveTransmitter tx({.max_frequency = 0.3});
  tx.decide(0, std::vector<double>{0.0, 0.0});  // first: transmit
  tx.decide(1, std::vector<double>{0.3, 0.4});
  // F = (0.09 + 0.16) / 2.
  EXPECT_NEAR(tx.last_penalty(), 0.125, 1e-12);
}

TEST(AdaptiveTransmitter, LongRunFrequencyMeetsConstraint) {
  // Random-walk measurements; the drift-plus-penalty rule must keep the
  // long-run transmission frequency at (or below) B.
  for (const double b : {0.1, 0.3, 0.5}) {
    AdaptiveTransmitter tx({.max_frequency = b});
    Rng rng(17);
    double x = 0.5;
    const std::size_t steps = 5000;
    for (std::size_t t = 0; t < steps; ++t) {
      x = std::clamp(x + rng.normal(0.0, 0.05), 0.0, 1.0);
      tx.decide(t, scalar(x));
    }
    EXPECT_NEAR(tx.actual_frequency(), b, 0.03) << "B = " << b;
  }
}

TEST(AdaptiveTransmitter, LargeV0TransmitsOnLargeChanges) {
  // With a sizeable V0, a big measurement jump must trigger transmission
  // even if the queue is positive.
  AdaptiveTransmitter tx({.max_frequency = 0.3, .v0 = 10.0});
  tx.decide(0, scalar(0.1));  // initial transmit, Q = 0.7
  EXPECT_TRUE(tx.decide(1, scalar(0.9)));  // V*F = ~2 > Q
}

TEST(AdaptiveTransmitter, ConstantSignalWithClampStaysSilent) {
  AdaptiveTransmitter tx(
      {.max_frequency = 0.3, .v0 = 1.0, .clamp_queue = true});
  tx.decide(0, scalar(0.4));
  std::size_t transmissions_after_first = 0;
  for (std::size_t t = 1; t < 200; ++t) {
    if (tx.decide(t, scalar(0.4))) ++transmissions_after_first;
  }
  EXPECT_EQ(transmissions_after_first, 0u);
  EXPECT_GE(tx.queue_length(), 0.0);
}

TEST(AdaptiveTransmitter, UnclampedQueueMeansEqualityConstraint) {
  // Per the paper, without clamping the constraint is met with equality
  // even when the signal is flat (transmissions still happen).
  AdaptiveTransmitter tx({.max_frequency = 0.25, .clamp_queue = false});
  for (std::size_t t = 0; t < 2000; ++t) {
    tx.decide(t, scalar(0.4));
  }
  EXPECT_NEAR(tx.actual_frequency(), 0.25, 0.02);
}

TEST(UniformTransmitter, TransmitsAtFixedInterval) {
  UniformTransmitter tx(0.25);
  std::vector<bool> pattern;
  for (std::size_t t = 0; t < 8; ++t) {
    pattern.push_back(tx.decide(t, scalar(0.0)));
  }
  // credit starts at 1.0: transmits at t=0, then whenever the accumulated
  // credit reaches a full message again (t=3, t=7, ... for B=0.25).
  EXPECT_TRUE(pattern[0]);
  EXPECT_FALSE(pattern[1]);
  EXPECT_FALSE(pattern[2]);
  EXPECT_TRUE(pattern[3]);
  EXPECT_FALSE(pattern[4]);
  EXPECT_FALSE(pattern[5]);
  EXPECT_FALSE(pattern[6]);
  EXPECT_TRUE(pattern[7]);
}

TEST(UniformTransmitter, FrequencyMatchesB) {
  for (const double b : {0.05, 0.3, 0.7, 1.0}) {
    UniformTransmitter tx(b);
    for (std::size_t t = 0; t < 1000; ++t) tx.decide(t, scalar(0.0));
    EXPECT_NEAR(tx.actual_frequency(), b, 0.01) << "B = " << b;
  }
}

TEST(UniformTransmitter, RejectsInvalidB) {
  EXPECT_THROW(UniformTransmitter(0.0), InvalidArgument);
  EXPECT_THROW(UniformTransmitter(1.1), InvalidArgument);
}

// ---- FleetCollector -------------------------------------------------

TEST(FleetCollector, StoreCompleteAfterFirstStep) {
  trace::SyntheticProfile p = trace::alibaba_profile();
  p.num_nodes = 10;
  p.num_steps = 50;
  const trace::InMemoryTrace t = trace::generate(p, 3);
  for (const PolicyKind kind :
       {PolicyKind::kAdaptive, PolicyKind::kUniform, PolicyKind::kAlways}) {
    FleetCollector fleet(t, make_policy_factory(kind, 0.3));
    fleet.step(0);
    EXPECT_TRUE(fleet.store().complete());
  }
}

TEST(FleetCollector, StepsMustBeConsecutive) {
  trace::SyntheticProfile p = trace::alibaba_profile();
  p.num_nodes = 4;
  p.num_steps = 10;
  const trace::InMemoryTrace t = trace::generate(p, 3);
  FleetCollector fleet(t, make_policy_factory(PolicyKind::kAlways, 1.0));
  fleet.step(0);
  EXPECT_THROW(fleet.step(2), InvalidArgument);
}

TEST(FleetCollector, AlwaysPolicyKeepsStoreFresh) {
  trace::SyntheticProfile p = trace::google_profile();
  p.num_nodes = 6;
  p.num_steps = 30;
  const trace::InMemoryTrace t = trace::generate(p, 5);
  FleetCollector fleet(t, make_policy_factory(PolicyKind::kAlways, 1.0));
  for (std::size_t step = 0; step < t.num_steps(); ++step) {
    fleet.step(step);
    for (std::size_t i = 0; i < t.num_nodes(); ++i) {
      EXPECT_EQ(fleet.store().staleness(i, step), 0u);
      EXPECT_DOUBLE_EQ(fleet.store().stored(i)[0], t.value(i, step, 0));
    }
  }
}

TEST(FleetCollector, BetaIndicatorsMatchStoreUpdates) {
  trace::SyntheticProfile p = trace::bitbrains_profile();
  p.num_nodes = 8;
  p.num_steps = 60;
  const trace::InMemoryTrace t = trace::generate(p, 6);
  FleetCollector fleet(t, make_policy_factory(PolicyKind::kAdaptive, 0.3));
  for (std::size_t step = 0; step < t.num_steps(); ++step) {
    const std::vector<bool> beta = fleet.step(step);
    for (std::size_t i = 0; i < t.num_nodes(); ++i) {
      if (beta[i]) {
        EXPECT_EQ(fleet.store().last_update_step(i), step);
        EXPECT_DOUBLE_EQ(fleet.store().stored(i)[0], t.value(i, step, 0));
      }
    }
  }
}

TEST(FleetCollector, ChannelAccountsForTraffic) {
  trace::SyntheticProfile p = trace::alibaba_profile();
  p.num_nodes = 5;
  p.num_steps = 40;
  const trace::InMemoryTrace t = trace::generate(p, 7);
  FleetCollector fleet(t, make_policy_factory(PolicyKind::kUniform, 0.5));
  for (std::size_t step = 0; step < t.num_steps(); ++step) fleet.step(step);
  std::uint64_t transmissions = 0;
  for (std::size_t i = 0; i < t.num_nodes(); ++i) {
    transmissions += fleet.policy(i).transmissions();
  }
  EXPECT_EQ(fleet.link().messages_sent(), transmissions);
  // Every message is one wire frame; wire_size() is the encoder's exact
  // byte count (see transport/wire_format.hpp).
  EXPECT_EQ(fleet.link().bytes_sent(),
            transmissions *
                net::wire::measurement_frame_size(t.num_resources()));
}

TEST(FleetCollector, LoopbackLinkMatchesPlainChannelBitForBit) {
  // The LoopbackLink pushes every message through the real wire codec; on
  // a failure-injecting link it must still behave exactly like the bare
  // Channel with the same options (encode->decode is an identity and both
  // draw the same drop/delay RNG sequence).
  trace::SyntheticProfile p = trace::alibaba_profile();
  p.num_nodes = 8;
  p.num_steps = 120;
  const trace::InMemoryTrace t = trace::generate(p, 13);
  const transport::ChannelOptions lossy{
      .drop_probability = 0.2, .max_delay_slots = 3, .seed = 99};
  FleetCollector plain(t, make_policy_factory(PolicyKind::kAdaptive, 0.3),
                       lossy);
  FleetCollector loopback(t, make_policy_factory(PolicyKind::kAdaptive, 0.3),
                          lossy, nullptr,
                          std::make_unique<net::LoopbackLink>(lossy));
  for (std::size_t step = 0; step < t.num_steps(); ++step) {
    EXPECT_EQ(plain.step(step), loopback.step(step)) << "step " << step;
    for (std::size_t i = 0; i < t.num_nodes(); ++i) {
      ASSERT_EQ(plain.store().has(i), loopback.store().has(i));
      if (!plain.store().has(i)) continue;
      ASSERT_EQ(plain.store().last_update_step(i),
                loopback.store().last_update_step(i));
      ASSERT_EQ(plain.store().stored(i), loopback.store().stored(i));
    }
  }
  EXPECT_EQ(plain.link().messages_sent(), loopback.link().messages_sent());
  EXPECT_EQ(plain.link().bytes_sent(), loopback.link().bytes_sent());
  EXPECT_EQ(plain.link().messages_dropped(),
            loopback.link().messages_dropped());
}

// ---- MeasurementSource ----------------------------------------------

TEST(MeasurementSource, TraceSourceViewsOneNode) {
  trace::SyntheticProfile p = trace::alibaba_profile();
  p.num_nodes = 3;
  p.num_steps = 8;
  const trace::InMemoryTrace t = trace::generate(p, 3);
  TraceSource source(t, 1);
  EXPECT_EQ(source.num_resources(), t.num_resources());
  EXPECT_EQ(source.num_steps(), t.num_steps());
  EXPECT_EQ(source.measurement(5), t.measurement(1, 5));
  EXPECT_THROW(TraceSource(t, 3), Error);
}

TEST(MeasurementSource, SourceFleetMatchesTraceFleetBitForBit) {
  // The source-based ctor is the host-collection seam; over TraceSources
  // it must reproduce the classic trace-mode collector exactly.
  trace::SyntheticProfile p = trace::alibaba_profile();
  p.num_nodes = 5;
  p.num_steps = 40;
  const trace::InMemoryTrace t = trace::generate(p, 9);
  std::vector<std::unique_ptr<MeasurementSource>> sources;
  for (std::size_t i = 0; i < t.num_nodes(); ++i) {
    sources.push_back(std::make_unique<TraceSource>(t, i));
  }
  FleetCollector classic(t, make_policy_factory(PolicyKind::kAdaptive, 0.3));
  FleetCollector seam(std::move(sources),
                      make_policy_factory(PolicyKind::kAdaptive, 0.3));
  EXPECT_EQ(seam.num_nodes(), t.num_nodes());
  for (std::size_t step = 0; step < t.num_steps(); ++step) {
    EXPECT_EQ(classic.step(step), seam.step(step)) << "step " << step;
    for (std::size_t i = 0; i < t.num_nodes(); ++i) {
      ASSERT_EQ(classic.store().stored(i), seam.store().stored(i));
    }
  }
}

TEST(MeasurementSource, FleetRejectsDisagreeingDimensions) {
  trace::SyntheticProfile p = trace::alibaba_profile();
  p.num_nodes = 1;
  p.num_steps = 4;
  const trace::InMemoryTrace a = trace::generate(p, 1);
  p.num_resources = a.num_resources() + 1;
  const trace::InMemoryTrace b = trace::generate(p, 1);
  std::vector<std::unique_ptr<MeasurementSource>> sources;
  sources.push_back(std::make_unique<TraceSource>(a, 0));
  sources.push_back(std::make_unique<TraceSource>(b, 0));
  EXPECT_THROW(
      FleetCollector(std::move(sources),
                     make_policy_factory(PolicyKind::kAlways, 1.0)),
      Error);
}

TEST(MeasurementSource, FleetRejectsEmptySourceList) {
  std::vector<std::unique_ptr<MeasurementSource>> none;
  EXPECT_THROW(FleetCollector(std::move(none),
                              make_policy_factory(PolicyKind::kAlways, 1.0)),
               Error);
}

// Property sweep: fleet-average adaptive frequency tracks B on real-ish
// workloads (the Fig. 3 property).
class FleetFrequencyTest : public ::testing::TestWithParam<double> {};

TEST_P(FleetFrequencyTest, FleetFrequencyTracksBudget) {
  const double b = GetParam();
  trace::SyntheticProfile p = trace::alibaba_profile();
  p.num_nodes = 20;
  p.num_steps = 2000;
  const trace::InMemoryTrace t = trace::generate(p, 11);
  FleetCollector fleet(t, make_policy_factory(PolicyKind::kAdaptive, b));
  for (std::size_t step = 0; step < t.num_steps(); ++step) fleet.step(step);
  EXPECT_NEAR(fleet.average_actual_frequency(), b, 0.05) << "B = " << b;
}

INSTANTIATE_TEST_SUITE_P(Budgets, FleetFrequencyTest,
                         ::testing::Values(0.05, 0.1, 0.3, 0.5));

}  // namespace
}  // namespace resmon::collect
